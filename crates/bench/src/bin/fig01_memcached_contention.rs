//! Figure 1: CDF of memcached request latency with and without competing
//! netperf traffic (plain TCP, no Silo).
//!
//! Five servers under one 10 GbE switch; tenant A runs memcached with the
//! Facebook-ETC workload, tenant B all-to-all netperf. The headline: the
//! tail latency blows up by an order of magnitude under contention.

use silo_base::{Bytes, Dur};
use silo_bench::scenario::{testbed_tenants, ETC_TESTBED_LOAD, TESTBED_REQS};
use silo_bench::{print_cdf, Args};
use silo_simnet::{Sim, SimConfig, TransportMode};
use silo_topology::{Topology, TreeParams};

fn main() {
    let args = Args::parse();
    let topo = Topology::build(TreeParams::testbed());
    let dur = Dur::from_ms(args.duration_ms.max(200));
    // The testbed TCP stack's 200 ms min RTO produces Fig. 1's 217 ms
    // spikes at the 99.9th percentile.
    let run = |with_b: bool| {
        let mut cfg = SimConfig::new(TransportMode::Tcp, dur, args.seed);
        cfg.min_rto = Dur::from_ms(200);
        let tenants = testbed_tenants(&TESTBED_REQS[0], Bytes(1500), with_b, ETC_TESTBED_LOAD);
        Sim::new(topo.clone(), cfg, tenants).run()
    };

    let alone = run(false);
    let contended = run(true);

    let mut lat_alone = alone.txn_latencies_us(0);
    let mut lat_cont = contended.txn_latencies_us(0);
    println!("== Fig 1: memcached request latency (us) ==");
    println!(
        "alone:     n={} p50={:.0} p99={:.0} p999={:.0}",
        lat_alone.len(),
        lat_alone.median().unwrap_or(0.0),
        lat_alone.p99().unwrap_or(0.0),
        lat_alone.p999().unwrap_or(0.0)
    );
    println!(
        "contended: n={} p50={:.0} p99={:.0} p999={:.0}",
        lat_cont.len(),
        lat_cont.median().unwrap_or(0.0),
        lat_cont.p99().unwrap_or(0.0),
        lat_cont.p999().unwrap_or(0.0)
    );
    println!("paper: alone p99 = 270 us; contended p99 = 2.3 ms, p999 = 217 ms (RTO)");
    print_cdf("memcached alone", &mut lat_alone, 21);
    print_cdf("memcached with netperf", &mut lat_cont, 21);
}
