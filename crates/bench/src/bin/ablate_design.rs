//! Ablations of Silo's design choices (the knobs DESIGN.md calls out):
//!
//! 1. **Batch window** — the paper picked 50 µs: long enough to amortize
//!    IO, short enough to bound NIC-induced jitter. We sweep it.
//! 2. **Burst allowance** — §6.1 notes raising memcached's burst from
//!    1.5 KB to 3 KB cuts the 99.9th percentile; we sweep S.
//! 3. **Hose coordination epoch** — the fallback coordination period
//!    behind the event-driven updates.

use silo_base::{Bytes, Dur, Rate};
use silo_bench::Args;
use silo_simnet::{Metrics, Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo_topology::{HostId, Topology, TreeParams};

fn topo() -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: 8,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn tenants(burst: Bytes) -> Vec<TenantSpec> {
    let b = Rate::from_mbps(500);
    let msg = Bytes((burst.as_u64() * 9) / 10);
    // Hold offered load at 30% of the hose while the burst size sweeps:
    // 7 senders x msg bits per interval = 0.3 x B.
    let interval = Dur::from_secs_f64(7.0 * msg.bits() as f64 / (0.3 * b.as_bps() as f64));
    vec![
        TenantSpec {
            vm_hosts: (0..8).map(HostId).collect(),
            b,
            s: burst,
            bmax: Rate::from_gbps(1),
            prio: 0,
            delay: None,
            workload: TenantWorkload::OldiAllToOne {
                msg_mean: msg,
                interval,
            },
        },
        TenantSpec {
            vm_hosts: (0..8).map(HostId).collect(),
            b: Rate::from_gbps(2),
            s: Bytes(1500),
            bmax: Rate::from_gbps(2),
            prio: 0,
            delay: None,
            workload: TenantWorkload::BulkAllToAll {
                msg: Bytes::from_mb(1),
            },
        },
    ]
}

fn run(cfg: SimConfig, burst: Bytes) -> Metrics {
    Sim::new(topo(), cfg, tenants(burst)).run()
}

fn main() {
    let args = Args::parse();
    let dur = Dur::from_ms(args.duration_ms.max(200));

    println!("== Ablation 1: paced-IO batch window ==");
    println!("window\tOLDI p99 (us)\tvoid Gbps\tdrops");
    for us in [10u64, 50, 200, 1000] {
        let mut cfg = SimConfig::new(TransportMode::Silo, dur, args.seed);
        cfg.batch_window = Dur::from_us(us);
        let m = run(cfg, Bytes::from_kb(15));
        let mut lat = m.latencies_us(0);
        println!(
            "{us}us\t{:.0}\t{:.2}\t{}",
            lat.p99().unwrap_or(f64::NAN),
            m.wire_void_bytes as f64 * 8.0 / dur.as_secs_f64() / 1e9,
            m.drops
        );
    }
    println!("(longer batches add up to one window of jitter; 50us is the knee)");

    println!("\n== Ablation 2: burst allowance S ==");
    println!("S\tOLDI p99 (us)\tp99.9 (us)");
    for kb in [2u64, 5, 15, 30] {
        let cfg = SimConfig::new(TransportMode::Silo, dur, args.seed);
        let m = run(cfg, Bytes::from_kb(kb));
        let mut lat = m.latencies_us(0);
        println!(
            "{kb}KB\t{:.0}\t{:.0}",
            lat.p99().unwrap_or(f64::NAN),
            lat.p999().unwrap_or(f64::NAN)
        );
    }
    println!("(messages sized to ride S: bigger bursts transmit at Bmax end-to-end)");

    println!("\n== Ablation 3: hose coordination epoch ==");
    println!("epoch\tOLDI p99 (us)\tdrops");
    for us in [100u64, 200, 1000, 5000] {
        let mut cfg = SimConfig::new(TransportMode::Silo, dur, args.seed);
        cfg.hose_epoch = Dur::from_us(us);
        let m = run(cfg, Bytes::from_kb(15));
        let mut lat = m.latencies_us(0);
        println!("{us}us\t{:.0}\t{}", lat.p99().unwrap_or(f64::NAN), m.drops);
    }
    println!("(event-driven updates make the periodic epoch a safety net only)");
}
