//! The theorem check: Silo's whole design rests on the claim that if
//! tenants are placed under constraint C1 and paced to their curves, then
//! **no switch queue ever exceeds the bound the placement manager
//! computed**. This binary closes the loop end-to-end: build a tenant
//! population with the real placer, drive it with adversarial workloads
//! (simultaneous all-to-one bursts + backlogged shuffles) through the
//! packet simulator, and compare every port's measured queue high-water
//! mark against its admission-time backlog bound.
//!
//! With `--audit`, the same bounds are also checked *online* by the
//! engine's invariant-audit layer (plus byte conservation, FIFO
//! causality, wire exclusivity and per-VM curve conformance), and the run
//! fails on any unattributed violation. The small-scale version of this
//! check runs in CI as the tier-2 `queue_bounds` test.

use silo_base::Dur;
use silo_bench::verify::{build_verify_population, run_verify};
use silo_bench::Args;
use silo_topology::{Topology, TreeParams};

fn main() {
    let args = Args::parse();
    let topo = Topology::build(TreeParams::ns2_scaled(args.scale));
    let (placer, specs, used) = build_verify_population(&topo, args.occupancy, args.seed);
    println!(
        "placed {} tenants on {} slots ({} hosts); running {} ms of worst-case traffic…",
        specs.len(),
        used,
        topo.num_hosts(),
        args.duration_ms.max(200)
    );
    let batch_us = std::env::var("SILO_BATCH_US")
        .ok()
        .map(|us| us.parse().expect("SILO_BATCH_US takes microseconds"));
    let dbg_specs = specs.clone();
    let out = run_verify(
        &topo,
        &placer,
        specs,
        Dur::from_ms(args.duration_ms.max(200)),
        args.seed,
        batch_us,
        args.audit,
    );
    let m = &out.metrics;

    println!("drops: {} (must be 0)", m.drops);
    println!("\nport\tkind\tmeasured\tbound\tbuffer\tok");
    for row in &out.rows {
        if !row.ok() || row.measured * 4 > row.buffer {
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}",
                row.port,
                if row.up { "up" } else { "down" },
                row.measured,
                row.bound,
                row.buffer,
                if row.ok() { "yes" } else { "VIOLATION" }
            );
            if !row.ok() {
                println!("  peak at t = {}", row.peak_at);
            }
        }
    }
    println!(
        "\n{} loaded switch ports checked, {} bound violations",
        out.checked, out.violations
    );
    if std::env::var("SILO_DEBUG_HOST").is_ok() {
        let h: u32 = std::env::var("SILO_DEBUG_HOST").unwrap().parse().unwrap();
        for (ti, t) in dbg_specs.iter().enumerate() {
            let here = t.vm_hosts.iter().filter(|x| x.0 == h).count();
            if here > 0 {
                println!(
                    "tenant {ti}: {} VMs ({} on host {h}), B={} S={} Bmax={} wl={:?}",
                    t.vm_hosts.len(),
                    here,
                    t.b,
                    t.s,
                    t.bmax,
                    std::mem::discriminant(&t.workload)
                );
            }
        }
    }
    assert_eq!(m.drops, 0, "admitted, paced traffic must never be dropped");
    assert_eq!(
        out.violations, 0,
        "every measured queue must respect its admission-time bound"
    );
    if let Some(report) = &out.audit {
        println!("{}", report.summary());
        assert!(
            report.is_clean(),
            "online audit must agree with the end-of-run check: {}",
            report.summary()
        );
    }
    println!("VERIFIED: every switch queue stayed within its network-calculus bound.");
}
