//! The theorem check: Silo's whole design rests on the claim that if
//! tenants are placed under constraint C1 and paced to their curves, then
//! **no switch queue ever exceeds the bound the placement manager
//! computed**. This binary closes the loop end-to-end: build a tenant
//! population with the real placer, drive it with adversarial workloads
//! (simultaneous all-to-one bursts + backlogged shuffles) through the
//! packet simulator, and compare every port's measured queue high-water
//! mark against its admission-time backlog bound.

use rand::Rng;
use silo_base::{exponential, seeded_rng, Bytes, Dur, Rate};
use silo_bench::Args;
use silo_placement::{Guarantee, Placer, SiloPlacer, TenantRequest};
use silo_simnet::{Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo_topology::{HostId, PortId, Topology, TreeParams};

fn main() {
    let args = Args::parse();
    let topo = Topology::build(TreeParams::ns2_scaled(args.scale));
    let mut placer = SiloPlacer::new(topo.clone());
    let mut rng = seeded_rng(args.seed);
    let mut specs = Vec::new();
    let target = (topo.params().num_vm_slots() as f64 * args.occupancy) as usize;
    let mut used = 0usize;
    let mut rejects = 0;
    while used < target && rejects < 50 {
        let class_a = specs.len() % 2 == 0;
        let n = if class_a {
            16 + (rng.random_range(0..17usize))
        } else {
            8 + (rng.random_range(0..9usize))
        };
        let g = if class_a {
            Guarantee {
                b: Rate::from_bps(
                    (exponential(&mut rng, 1.0 / 0.25e9) as u64).clamp(50_000_000, 1_000_000_000),
                ),
                s: Bytes((exponential(&mut rng, 1.0 / 15_000.0) as u64).clamp(1_500, 60_000)),
                bmax: Rate::from_gbps(1),
                delay: Some(Dur::from_us(1000)),
            }
        } else {
            let b = Rate::from_bps(
                (exponential(&mut rng, 1.0 / 2e9) as u64).clamp(250_000_000, 5_000_000_000),
            );
            Guarantee {
                b,
                s: Bytes(1500),
                bmax: b,
                delay: None,
            }
        };
        let Ok(p) = placer.try_place(&TenantRequest::new(n, g)) else {
            rejects += 1;
            continue;
        };
        rejects = 0;
        used += n;
        let mut vm_hosts: Vec<HostId> = Vec::new();
        for &(h, k) in &p.hosts {
            for _ in 0..k {
                vm_hosts.push(h);
            }
        }
        let workload = if class_a {
            // Worst case: every burst fully synchronized, message = 0.9 S.
            let msg = Bytes((g.s.as_u64() * 9) / 10);
            let interval = Dur::from_secs_f64(
                (n - 1) as f64 * msg.bits() as f64 / (0.5 * g.b.as_bps() as f64),
            );
            TenantWorkload::OldiAllToOne {
                msg_mean: msg,
                interval,
            }
        } else {
            TenantWorkload::BulkAllToAll {
                msg: Bytes::from_mb(1),
            }
        };
        specs.push(TenantSpec {
            vm_hosts,
            b: g.b,
            s: g.s,
            bmax: g.bmax,
            prio: 0,
            delay: None,
            workload,
        });
    }
    println!(
        "placed {} tenants on {} slots ({} hosts); running {} ms of worst-case traffic…",
        specs.len(),
        used,
        topo.num_hosts(),
        args.duration_ms.max(200)
    );
    let mut cfg = SimConfig::new(
        TransportMode::Silo,
        Dur::from_ms(args.duration_ms.max(200)),
        args.seed,
    );
    if let Ok(us) = std::env::var("SILO_BATCH_US") {
        cfg.batch_window = Dur::from_us(us.parse().unwrap());
    }
    let dbg_specs = specs.clone();
    let (m, simdbg) = Sim::new(topo.clone(), cfg, specs).run_keep();

    println!("drops: {} (must be 0)", m.drops);
    println!("\nport\tkind\tmeasured\tbound\tbuffer\tok");
    let mut checked = 0;
    let mut violations = 0;
    for i in 0..topo.num_ports() {
        let pid = PortId(i as u32);
        let info = topo.port(pid);
        if info.is_nic {
            continue; // NIC queues live in host memory under the pacer
        }
        let measured = m.port_max_queue[i];
        if measured == 0 {
            continue;
        }
        // The fluid bound plus one batch window of bunching: paced-IO
        // batching may delay packets by up to `batch_window` and then
        // release them back-to-back, which the fluid curves don't model
        // (the paper absorbs the same slack inside the ports' queue
        // capacity margin).
        let slack = info.rate.bytes_in(Dur::from_us(50)).as_u64();
        let bound = placer.backlog_bound(pid).map(|b| b.as_u64()).unwrap_or(0) + slack;
        checked += 1;
        let ok = measured <= bound;
        if !ok {
            violations += 1;
        }
        if !ok || measured * 4 > info.buffer.as_u64() {
            println!(
                "{i}\t{}\t{}\t{}\t{}\t{}",
                if pid.is_up() { "up" } else { "down" },
                measured,
                bound,
                info.buffer.as_u64(),
                if ok { "yes" } else { "VIOLATION" }
            );
            if !ok {
                let (_, at) = simdbg.debug_port_peaks()[i];
                println!("  peak at t = {at}");
            }
        }
    }
    println!("\n{checked} loaded switch ports checked, {violations} bound violations");
    if std::env::var("SILO_DEBUG_HOST").is_ok() {
        let h: u32 = std::env::var("SILO_DEBUG_HOST").unwrap().parse().unwrap();
        for (ti, t) in dbg_specs.iter().enumerate() {
            let here = t.vm_hosts.iter().filter(|x| x.0 == h).count();
            if here > 0 {
                println!(
                    "tenant {ti}: {} VMs ({} on host {h}), B={} S={} Bmax={} wl={:?}",
                    t.vm_hosts.len(),
                    here,
                    t.b,
                    t.s,
                    t.bmax,
                    std::mem::discriminant(&t.workload)
                );
            }
        }
    }
    assert_eq!(m.drops, 0, "admitted, paced traffic must never be dropped");
    assert_eq!(
        violations, 0,
        "every measured queue must respect its admission-time bound"
    );
    println!("VERIFIED: every switch queue stayed within its network-calculus bound.");
}
