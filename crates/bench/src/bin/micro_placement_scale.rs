//! §5 placement microbenchmark: "in a simulated datacenter with 100K
//! hosts with an average tenant requesting 49 VMs ... over 100K requests,
//! the maximum placement time is 1.15 s."
//!
//! Default scale is reduced (`--scale 1` for the paper's full 100 K hosts
//! and `--runs` controls the request count in thousands).

use silo_base::{exponential, seeded_rng, Bytes, Dur, Rate};
use silo_bench::Args;
use silo_placement::{Guarantee, Placer, SiloPlacer, TenantRequest};
use silo_topology::{Topology, TreeParams};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    // Full scale: 100K hosts = 25 pods x 100 racks x 40 servers.
    let pods = ((25.0 * args.scale).round() as usize).max(2);
    let topo = Topology::build(TreeParams {
        pods,
        racks_per_pod: 100,
        servers_per_rack: 40,
        vm_slots_per_server: 8,
        host_link: Rate::from_gbps(10),
        tor_oversub: 5.0,
        agg_oversub: 5.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    });
    let hosts = topo.num_hosts();
    let requests = (args.runs * 1000).max(1000);
    println!("== Placement manager scalability ==");
    println!(
        "hosts: {hosts}, vm slots: {}, requests: {requests}",
        topo.params().num_vm_slots()
    );

    let mut placer = SiloPlacer::new(topo);
    let mut rng = seeded_rng(args.seed);
    let mut placed = Vec::new();
    let mut max_t = 0.0f64;
    let mut sum_t = 0.0f64;
    let mut accepted = 0usize;
    for i in 0..requests {
        let n = (exponential(&mut rng, 1.0 / 49.0).round() as usize).clamp(2, 200);
        let class_a = i % 2 == 0;
        let g = if class_a {
            Guarantee::class_a()
        } else {
            Guarantee::class_b()
        };
        let req = TenantRequest::new(n, g);
        let t0 = Instant::now();
        let r = placer.try_place(&req);
        let dt = t0.elapsed().as_secs_f64();
        max_t = max_t.max(dt);
        sum_t += dt;
        if let Ok(p) = r {
            accepted += 1;
            placed.push(p.tenant);
        }
        // Churn: keep occupancy near 80% by retiring old tenants.
        while placer.used_slots() as f64 > 0.8 * placer.topology().params().num_vm_slots() as f64 {
            let t = placed.remove(0);
            placer.remove(t);
        }
    }
    println!(
        "accepted: {accepted}/{requests} ({:.1}%)",
        accepted as f64 / requests as f64 * 100.0
    );
    println!(
        "mean placement time: {:.3} ms",
        sum_t / requests as f64 * 1e3
    );
    println!(
        "max placement time:  {:.3} ms  (paper: max 1.15 s at 100 K hosts)",
        max_t * 1e3
    );
}
