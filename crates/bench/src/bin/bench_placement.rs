//! Admission-service benchmark: drives the long-running
//! `silo_placement::AdmissionService` with seeded diurnal tenant churn on
//! the Fig-15 flow-level topology (32 K servers at `--scale 1`) and
//! reports event throughput and per-admission latency — written to
//! `BENCH_placement.json` in the current directory.
//!
//! Three phases run the same lifetime budget through different stream
//! shapes:
//!
//! 1. `diurnal`            — plain sinusoidally-modulated Poisson
//!    arrivals with exponential lifetimes;
//! 2. `flash_crowd`        — the same plus a 4× arrival spike over 10% of
//!    the horizon;
//! 3. `correlated_failure` — the same plus rack-correlated link-failure
//!    bursts (several host links failing and healing together), which
//!    exercises the dead-host mask and reclaim/readmit sweeps under churn.
//!
//! Every phase probes `verify_scratch_consistency` (the incremental
//! state vs from-scratch differential) several times mid-stream, and
//! ends with a snapshot → restore → snapshot round-trip that must be
//! byte-exact. Any violation panics, so a passing run doubles as the
//! full-scale integrity gate.
//!
//! `--runs N` sets the lifetime budget per phase to `N × 1000` tenant
//! lifetimes (committed numbers use `--runs 100 --scale 1`: 10⁵
//! lifetimes on 32 K servers).

use silo_base::{Bytes, Dur, Rate};
use silo_bench::{auto_threads, Args};
use silo_placement::{AdmissionService, ChurnEvent};
use silo_topology::{Topology, TreeParams};
use silo_workload::churn::{self, ChurnConfig, FailureBurst, FlashCrowd};
use std::time::Instant;

/// The Fig-15 flow-level topology: 16 pods × 40 racks × 50 servers =
/// 32 K servers at full scale.
fn flow_topo(scale: f64) -> Topology {
    let pods = ((16.0 * scale).round() as usize).max(2);
    let racks = ((40.0 * scale).round() as usize).max(2);
    Topology::build(TreeParams {
        pods,
        racks_per_pod: racks,
        servers_per_rack: 50,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 5.0,
        agg_oversub: 5.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

struct PhaseResult {
    label: &'static str,
    events: usize,
    wall_s: f64,
    admits: u64,
    rejects: u64,
    evicts: u64,
    faults: u64,
    admissions_per_sec: f64,
    evictions_per_sec: f64,
    admit_p50_us: f64,
    admit_p99_us: f64,
    admit_mean_us: f64,
    resident_tenants: usize,
    mask_rebuilds: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// `--telemetry`: windowed admission series as JSONL (hand-rolled in
    /// the silo-telemetry-v1 style; the latency column is wall clock, so
    /// unlike the simulator's telemetry this file is *not* deterministic
    /// and is not subject to the `silo-top diff` gate).
    telemetry: Option<String>,
}

fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Windows for the `--telemetry` admission series: enough grid to see a
/// flash crowd or failure burst (each spans 10% of the horizon) without
/// drowning the file in empty rows.
const TELEMETRY_WINDOWS: usize = 100;

#[derive(Default, Clone)]
struct AdmitWindow {
    admits: u64,
    rejects: u64,
    evicts: u64,
    faults: u64,
    mask_rebuilds: u64,
    admit_ns: Vec<u64>,
}

fn run_phase(
    label: &'static str,
    topo: &Topology,
    cfg: &ChurnConfig,
    probes: usize,
    telemetry: bool,
) -> PhaseResult {
    let events = churn::generate(topo, cfg);
    let mut svc = AdmissionService::new(topo.clone());
    let mut admit_ns: Vec<u64> = Vec::new();
    let mut evict_wall = 0.0f64;
    let probe_every = (events.len() / probes.max(1)).max(1);
    let mut wins = vec![AdmitWindow::default(); if telemetry { TELEMETRY_WINDOWS } else { 0 }];
    let mut last_rebuilds = 0u64;

    let t0 = Instant::now();
    for (i, (at, ev)) in events.iter().enumerate() {
        let w = telemetry.then(|| {
            ((at / cfg.horizon_s * TELEMETRY_WINDOWS as f64) as usize).min(TELEMETRY_WINDOWS - 1)
        });
        match ev {
            ChurnEvent::Admit(_) => {
                let t = Instant::now();
                let decision = svc.apply(ev);
                let ns = t.elapsed().as_nanos() as u64;
                admit_ns.push(ns);
                if let Some(w) = w {
                    let win = &mut wins[w];
                    if matches!(decision, silo_placement::Decision::Admitted { .. }) {
                        win.admits += 1;
                    } else {
                        win.rejects += 1;
                    }
                    win.admit_ns.push(ns);
                }
            }
            ChurnEvent::Evict(_) => {
                let t = Instant::now();
                svc.apply(ev);
                evict_wall += t.elapsed().as_secs_f64();
                if let Some(w) = w {
                    wins[w].evicts += 1;
                }
            }
            _ => {
                svc.apply(ev);
                if let Some(w) = w {
                    if matches!(ev, ChurnEvent::FailLink(_)) {
                        wins[w].faults += 1;
                    }
                }
            }
        }
        if let Some(w) = w {
            // Attribute mask-rebuild deltas to the window whose event
            // triggered them (the counter only moves inside `apply`).
            let r = svc.placer().mask_rebuilds();
            wins[w].mask_rebuilds += r - last_rebuilds;
            last_rebuilds = r;
        }
        if (i + 1) % probe_every == 0 {
            svc.placer()
                .verify_scratch_consistency()
                .unwrap_or_else(|e| {
                    panic!("{label}: incremental state diverged at event {i}: {e}")
                });
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // Snapshot → restore → snapshot must be byte-exact, and the restored
    // placer must itself pass the from-scratch audit.
    let snap = svc.snapshot();
    let restored = AdmissionService::restore(&snap)
        .unwrap_or_else(|e| panic!("{label}: snapshot failed to parse: {e}"));
    assert_eq!(
        restored.snapshot(),
        snap,
        "{label}: snapshot/restore round-trip is not byte-exact"
    );
    restored
        .placer()
        .verify_scratch_consistency()
        .unwrap_or_else(|e| panic!("{label}: restored placer inconsistent: {e}"));

    let s = svc.stats();
    let admit_wall: f64 = admit_ns.iter().map(|&n| n as f64 / 1e9).sum();
    admit_ns.sort_unstable();
    let (hits, misses) = svc.placer().bound_cache_stats();
    let telemetry_jsonl = telemetry.then(|| {
        let mut out = format!(
            "{{\"format\":\"silo-placement-telemetry-v1\",\"windows\":{TELEMETRY_WINDOWS},\"interval_s\":{:.6},\"phase\":\"{label}\"}}\n",
            cfg.horizon_s / TELEMETRY_WINDOWS as f64
        );
        for (w, win) in wins.iter_mut().enumerate() {
            win.admit_ns.sort_unstable();
            out.push_str(&format!(
                "{{\"w\":{w},\"admits\":{},\"rejects\":{},\"evicts\":{},\"faults\":{},\"mask_rebuilds\":{},\"admit_p99_us\":{:.2}}}\n",
                win.admits,
                win.rejects,
                win.evicts,
                win.faults,
                win.mask_rebuilds,
                quantile_us(&win.admit_ns, 0.99)
            ));
        }
        out
    });
    PhaseResult {
        label,
        events: events.len(),
        wall_s,
        admits: s.admitted,
        rejects: s.rejected,
        evicts: s.evicted,
        faults: s.faults,
        admissions_per_sec: (s.admitted + s.rejected) as f64 / admit_wall.max(1e-12),
        evictions_per_sec: (s.evicted + s.evict_noops) as f64 / evict_wall.max(1e-12),
        admit_p50_us: quantile_us(&admit_ns, 0.50),
        admit_p99_us: quantile_us(&admit_ns, 0.99),
        admit_mean_us: admit_wall * 1e6 / admit_ns.len().max(1) as f64,
        resident_tenants: svc.live_tenants(),
        mask_rebuilds: svc.placer().mask_rebuilds(),
        cache_hits: hits,
        cache_misses: misses,
        telemetry: telemetry_jsonl,
    }
}

fn main() {
    let args = Args::parse();
    let topo = flow_topo(args.scale);
    let lifetimes = (args.runs as u64) * 1000;
    eprintln!(
        "bench_placement: {} servers ({} pods x {} racks), {} lifetimes/phase, seed {}",
        topo.num_hosts(),
        topo.num_pods(),
        topo.num_racks() / topo.num_pods(),
        lifetimes,
        args.seed
    );

    // Scale the offered load to the cluster: target ~85% steady-state
    // slot demand (Little's law: resident slots ≈ λ · lifetime · VMs), so
    // the placer runs near capacity and the reject path is exercised at
    // every scale.
    let mut base = ChurnConfig::diurnal(args.seed);
    let total_slots = (topo.num_hosts() * topo.slots_per_server()) as f64;
    base.arrivals_per_s = 0.85 * total_slots / (base.mean_lifetime_s * base.mean_vms);
    let base = base.for_lifetimes(lifetimes);
    let horizon = base.horizon_s;
    let flash = base.clone().with_flash_crowd(FlashCrowd {
        at_s: 0.3 * horizon,
        dur_s: 0.1 * horizon,
        multiplier: 4.0,
    });
    let mut faulted = base.clone();
    for k in 0..3 {
        faulted = faulted.with_failure_burst(FailureBurst {
            at_s: (0.2 + 0.25 * k as f64) * horizon,
            dur_s: 0.1 * horizon,
            hosts: 8,
        });
    }

    // `--telemetry` records the windowed admission series of the
    // correlated-failure phase (the one where the mask_rebuilds and
    // fault series actually move).
    let telemetry_on = args.telemetry.is_some();
    let phases = [
        run_phase("diurnal", &topo, &base, 5, false),
        run_phase("flash_crowd", &topo, &flash, 5, false),
        run_phase("correlated_failure", &topo, &faulted, 5, telemetry_on),
    ];
    if let (Some(path), Some(jsonl)) = (&args.telemetry, &phases[2].telemetry) {
        std::fs::write(path, jsonl).expect("write placement telemetry jsonl");
        println!(
            "admission telemetry ({}): {TELEMETRY_WINDOWS} windows -> {path}",
            phases[2].label
        );
    }

    println!(
        "{:<20} {:>9} {:>8} {:>9} {:>9} {:>8} {:>12} {:>12} {:>9} {:>9}",
        "phase",
        "events",
        "wall_s",
        "admits",
        "rejects",
        "faults",
        "admits/sec",
        "evicts/sec",
        "p50_us",
        "p99_us"
    );
    for p in &phases {
        println!(
            "{:<20} {:>9} {:>8.2} {:>9} {:>9} {:>8} {:>12.0} {:>12.0} {:>9.1} {:>9.1}",
            p.label,
            p.events,
            p.wall_s,
            p.admits,
            p.rejects,
            p.faults,
            p.admissions_per_sec,
            p.evictions_per_sec,
            p.admit_p50_us,
            p.admit_p99_us
        );
    }

    // Headline numbers come from the plain diurnal phase; the faulted
    // phase's are reported alongside (the interesting regression there is
    // mask_rebuilds staying equal to the number of fault events).
    let head = &phases[0];
    let faultp = &phases[2];
    assert!(
        faultp.mask_rebuilds <= 2 * faultp.faults,
        "mask rebuilt more often than fault sweeps ({} rebuilds, {} faults)",
        faultp.mask_rebuilds,
        faultp.faults
    );

    let notes = format!(
        "admission service on {} servers: {:.0} admissions/sec sustained \
         (p99 admit {:.1} us) over {} lifetimes of diurnal churn; \
         incremental-vs-scratch audit probed 5x/phase and snapshot/restore \
         round-tripped byte-exactly in all phases; under correlated rack \
         failures the dead-host mask was rebuilt {} times for {} fault \
         events (admissions never clone it) and throughput held at {:.0} \
         admissions/sec",
        topo.num_hosts(),
        head.admissions_per_sec,
        head.admit_p99_us,
        lifetimes,
        faultp.mask_rebuilds,
        faultp.faults,
        faultp.admissions_per_sec
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"name\": \"placement_service\",\n");
    out.push_str(&format!(
        "  \"notes\": \"{}\",\n",
        notes.replace('"', "\\\"")
    ));
    out.push_str(&format!(
        "  \"host_cores\": {},\n",
        auto_threads(usize::MAX)
    ));
    out.push_str(&format!(
        "  \"scale\": {}, \"seed\": {}, \"servers\": {}, \"lifetimes_per_phase\": {},\n",
        args.scale,
        args.seed,
        topo.num_hosts(),
        lifetimes
    ));
    out.push_str(&format!(
        "  \"admissions_per_sec\": {:.1},\n",
        head.admissions_per_sec
    ));
    out.push_str(&format!(
        "  \"evictions_per_sec\": {:.1},\n",
        head.evictions_per_sec
    ));
    out.push_str(&format!(
        "  \"p99_admit_latency_us\": {:.2},\n",
        head.admit_p99_us
    ));
    out.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"label\": \"{}\",\n", p.label));
        out.push_str(&format!(
            "      \"events\": {}, \"wall_s\": {:.3},\n",
            p.events, p.wall_s
        ));
        out.push_str(&format!(
            "      \"admits\": {}, \"rejects\": {}, \"evicts\": {}, \"faults\": {},\n",
            p.admits, p.rejects, p.evicts, p.faults
        ));
        out.push_str(&format!(
            "      \"admissions_per_sec\": {:.1}, \"evictions_per_sec\": {:.1},\n",
            p.admissions_per_sec, p.evictions_per_sec
        ));
        out.push_str(&format!(
            "      \"admit_p50_us\": {:.2}, \"admit_p99_us\": {:.2}, \"admit_mean_us\": {:.2},\n",
            p.admit_p50_us, p.admit_p99_us, p.admit_mean_us
        ));
        out.push_str(&format!(
            "      \"resident_tenants\": {}, \"mask_rebuilds\": {},\n",
            p.resident_tenants, p.mask_rebuilds
        ));
        out.push_str(&format!(
            "      \"bound_cache_hits\": {}, \"bound_cache_misses\": {}\n",
            p.cache_hits, p.cache_misses
        ));
        out.push_str(if i + 1 < phases.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");

    std::fs::write("BENCH_placement.json", &out).expect("write BENCH_placement.json");
    eprintln!("{notes}");
    eprintln!("wrote BENCH_placement.json");
}
