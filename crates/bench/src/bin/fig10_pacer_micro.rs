//! Figure 10: pacer microbenchmarks.
//!
//! (a) CPU usage and packet rate vs the pacer's rate limit on a 10 GbE
//!     NIC. Packet rates (data + void) come from a real simulated wire
//!     schedule; CPU cores come from the calibrated linear cost model
//!     (see `silo_pacer::CpuModel` — the simulation cannot measure
//!     cycles, so this panel is model-driven by mechanism-produced rates).
//! (b) Data and void throughput vs rate limit, plus the ideal data rate.
//!     The paper's claim: ≥ 98 % of ideal at every limit, 100 % of line
//!     at 10 G, minimum packet spacing 68 ns.

use silo_base::{Bytes, Dur, Rate, Time};
use silo_pacer::{
    min_data_gap, BucketChain, CpuModel, FrameKind, PacedBatcher, TokenBucket, WireFrame,
};

/// Drive a saturating sender at `limit` through the pacer for `dur` of
/// wire time; return the full frame schedule.
fn schedule(limit: Rate, dur: Dur) -> Vec<WireFrame<u64>> {
    let link = Rate::from_gbps(10);
    let mtu = Bytes(1500);
    let mut chain = BucketChain::new(vec![
        TokenBucket::new(limit, mtu), // pure rate limit: 1-MTU burst
    ]);
    let mut batcher = PacedBatcher::new(link, Dur::from_us(50), mtu);
    let mut frames = Vec::new();
    let mut now = Time::ZERO;
    let horizon = Time::ZERO + dur;
    let mut next_id = 0u64;
    let mut stamped_until = Time::ZERO;
    while now < horizon {
        // Keep a small backlog of stamped packets ahead of the wire.
        while stamped_until < now + Dur::from_us(200) {
            let t = chain.stamp(now, mtu);
            batcher.enqueue(t, mtu, next_id);
            next_id += 1;
            stamped_until = t;
        }
        let batch = batcher.next_batch(now);
        if batch.is_empty() {
            now = batcher.next_stamp().map(|s| s.max(now)).unwrap_or(horizon);
            continue;
        }
        now = batch.done_at;
        frames.extend(batch.frames);
    }
    frames
}

fn main() {
    let dur = Dur::from_ms(20);
    let model = CpuModel::default();
    println!("== Fig 10a/b: pacer microbenchmark (10 GbE, MTU data) ==");
    println!("limit\tdata_Gbps\tvoid_Gbps\tideal_Gbps\tdata/ideal\tpkts_Mpps\tcores");
    for g in 1..=10u64 {
        let limit = Rate::from_gbps(g);
        let frames = schedule(limit, dur);
        let secs = dur.as_secs_f64();
        let (mut data_b, mut void_b, mut data_n, mut void_n) = (0u64, 0u64, 0u64, 0u64);
        for f in &frames {
            match f.kind {
                FrameKind::Data => {
                    data_b += f.size.as_u64();
                    data_n += 1;
                }
                FrameKind::Void => {
                    void_b += f.size.as_u64();
                    void_n += 1;
                }
            }
        }
        let data_gbps = data_b as f64 * 8.0 / secs / 1e9;
        let void_gbps = void_b as f64 * 8.0 / secs / 1e9;
        let ideal = (g as f64).min(10.0);
        let pkts = (data_n + void_n) as f64 / secs / 1e6;
        let batches_ps = 1.0 / 50e-6;
        let cores = model.cores(data_n as f64 / secs, void_n as f64 / secs, batches_ps);
        println!(
            "{g}G\t{data_gbps:.2}\t{void_gbps:.2}\t{ideal:.0}\t{:.3}\t{pkts:.2}\t{cores:.2}",
            data_gbps / ideal
        );
        assert!(
            data_gbps / ideal > 0.97,
            "paper claims >= 98% of ideal at {g} Gbps, got {:.3}",
            data_gbps / ideal
        );
    }
    println!(
        "no-pacing baseline: {:.2} cores at 10 Gbps (LSO off)",
        model.cores_unpaced(10e9 / (1500.0 * 8.0))
    );

    // Minimum spacing: two 84 B frames with one 84 B void between them.
    let link = Rate::from_gbps(10);
    let mut b: PacedBatcher<u32> = PacedBatcher::new(link, Dur::from_us(50), Bytes(1500));
    b.enqueue(Time::ZERO, Bytes(84), 0);
    b.enqueue(Time(2 * 67_200), Bytes(84), 1);
    let batch = b.next_batch(Time::ZERO);
    let start_to_start = min_data_gap(&batch.frames).unwrap();
    // The inter-packet *gap* is one minimal void frame: start-to-start
    // minus the first frame's own wire time.
    let gap = start_to_start - link.tx_time(Bytes(84));
    println!("\nminimum achievable inter-packet gap: {gap} (paper: 68 ns = one 84 B void)");
    assert_eq!(gap, Dur::from_ps(67_200));
}
