//! Reader side of the flight-recorder interchange formats: the JSONL
//! trace-file loader, the first-divergence locator behind `silo-trace
//! diff`, and a structural validator for the Perfetto export. The JSON
//! parser itself lives in [`silo_base::json`] (shared with the
//! fault-schedule format) and is re-exported here.

use std::fmt::Write as _;

pub use silo_base::json::Json;

/// One event row of a silo-trace-v1 JSONL file. `raw` keeps the exact
/// source line for byte-level diff reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    pub seq: u64,
    pub t_ps: u64,
    pub dur_ps: u64,
    pub kind: String,
    pub loc: u64,
    pub aux: u64,
    pub conn: u64,
    pub pseq: u64,
    pub size: u64,
    pub tenant: u64,
    pub pkt: String,
    pub retx: bool,
    pub raw: String,
}

/// A loaded silo-trace-v1 file: the header's totals plus every row.
#[derive(Debug, Clone)]
pub struct TraceFile {
    pub events: u64,
    pub dropped: u64,
    pub tenants: u64,
    pub rows: Vec<TraceRow>,
}

/// Parse the JSONL interchange format ([`TraceLog::to_jsonl`]'s output):
/// a header object, then one event object per line.
///
/// [`TraceLog::to_jsonl`]: silo_simnet::TraceLog::to_jsonl
pub fn parse_jsonl(text: &str) -> Result<TraceFile, String> {
    let mut lines = text.lines();
    let header_line = lines.next().ok_or("empty trace file")?;
    let header = Json::parse(header_line).map_err(|e| format!("header: {e}"))?;
    match header.get("format").and_then(Json::as_str) {
        Some("silo-trace-v1") => {}
        other => return Err(format!("not a silo-trace-v1 file (format: {other:?})")),
    }
    let field = |obj: &Json, line: usize, key: &str| -> Result<u64, String> {
        obj.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {line}: missing integer field '{key}'"))
    };
    let mut file = TraceFile {
        events: field(&header, 1, "events")?,
        dropped: field(&header, 1, "dropped")?,
        tenants: field(&header, 1, "tenants")?,
        rows: Vec::with_capacity(file_hint(&header)),
    };
    for (n, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = n + 2;
        let v = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let strf = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {lineno}: missing string field '{key}'"))
        };
        file.rows.push(TraceRow {
            seq: field(&v, lineno, "seq")?,
            t_ps: field(&v, lineno, "t_ps")?,
            dur_ps: field(&v, lineno, "dur_ps")?,
            kind: strf("kind")?,
            loc: field(&v, lineno, "loc")?,
            aux: field(&v, lineno, "aux")?,
            conn: field(&v, lineno, "conn")?,
            pseq: field(&v, lineno, "pseq")?,
            size: field(&v, lineno, "size")?,
            tenant: field(&v, lineno, "tenant")?,
            pkt: strf("pkt")?,
            retx: v
                .get("retx")
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("line {lineno}: missing bool field 'retx'"))?,
            raw: line.to_string(),
        });
    }
    if file.rows.len() as u64 != file.events {
        return Err(format!(
            "header claims {} events, file holds {}",
            file.events,
            file.rows.len()
        ));
    }
    Ok(file)
}

fn file_hint(header: &Json) -> usize {
    header
        .get("events")
        .and_then(Json::as_u64)
        .unwrap_or(0)
        .min(1 << 22) as usize
}

/// Where two traces first part ways.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Row index (0-based into `rows`) of the first mismatch; equals the
    /// shorter file's length when one trace is a strict prefix.
    pub index: usize,
    pub left: Option<TraceRow>,
    pub right: Option<TraceRow>,
}

impl Divergence {
    /// Human-readable report: when and where the schedules split, and
    /// both recorders' view of that instant.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let at = |r: &Option<TraceRow>| match r {
            Some(r) => format!(
                "t={} ps  {}  conn={} pseq={} ({})",
                r.t_ps, r.kind, r.conn, r.pseq, r.pkt
            ),
            None => "<end of trace>".to_string(),
        };
        let _ = writeln!(out, "first divergent event: index {}", self.index);
        let _ = writeln!(out, "  left:  {}", at(&self.left));
        let _ = writeln!(out, "  right: {}", at(&self.right));
        if let (Some(l), Some(r)) = (&self.left, &self.right) {
            let _ = writeln!(out, "  left raw:  {}", l.raw);
            let _ = writeln!(out, "  right raw: {}", r.raw);
        }
        out
    }
}

/// Locate the first event where the two traces disagree (byte-level on
/// the canonical row encoding, so any field counts). `None` means the
/// event streams are identical — including their lengths.
pub fn first_divergence(a: &TraceFile, b: &TraceFile) -> Option<Divergence> {
    let n = a.rows.len().min(b.rows.len());
    for i in 0..n {
        if a.rows[i].raw != b.rows[i].raw {
            return Some(Divergence {
                index: i,
                left: Some(a.rows[i].clone()),
                right: Some(b.rows[i].clone()),
            });
        }
    }
    if a.rows.len() != b.rows.len() {
        return Some(Divergence {
            index: n,
            left: a.rows.get(n).cloned(),
            right: b.rows.get(n).cloned(),
        });
    }
    None
}

/// Per-kind counts and the headline physical facts of one trace —
/// `silo-trace summarize`'s output.
pub fn summarize(f: &TraceFile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "events {}  (dropped from rings: {})  tenants {}",
        f.rows.len(),
        f.dropped,
        f.tenants
    );
    if let (Some(first), Some(last)) = (f.rows.first(), f.rows.last()) {
        let _ = writeln!(
            out,
            "span {:.3} ms .. {:.3} ms",
            first.t_ps as f64 / 1e9,
            (last.t_ps + last.dur_ps) as f64 / 1e9
        );
    }
    let mut kinds: Vec<(&str, usize)> = Vec::new();
    for r in &f.rows {
        match kinds.iter_mut().find(|(k, _)| *k == r.kind) {
            Some((_, n)) => *n += 1,
            None => kinds.push((&r.kind, 1)),
        }
    }
    kinds.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (k, n) in &kinds {
        let _ = writeln!(out, "  {k:<12} {n}");
    }
    // Message latency per tenant from the retained msg_done spans.
    for t in 0..f.tenants {
        let mut lat: Vec<u64> = f
            .rows
            .iter()
            .filter(|r| r.kind == "msg_done" && r.tenant == t)
            .map(|r| r.dur_ps)
            .collect();
        if lat.is_empty() {
            continue;
        }
        lat.sort_unstable();
        let q = |p: f64| lat[((p * (lat.len() - 1) as f64).round() as usize).min(lat.len() - 1)];
        let _ = writeln!(
            out,
            "  tenant {t}: {} msgs  p50 {:.1} us  p99 {:.1} us  max {:.1} us",
            lat.len(),
            q(0.50) as f64 / 1e6,
            q(0.99) as f64 / 1e6,
            lat[lat.len() - 1] as f64 / 1e6,
        );
    }
    out
}

/// Structural validation of a Perfetto `trace_event` export: the JSON
/// parses, the three process tracks are declared, every event carries
/// the mandatory fields, and (when demanded) per-tenant tracks and
/// fault markers are present.
pub fn check_perfetto(
    text: &str,
    expect_tenant_tracks: bool,
    expect_fault_markers: bool,
) -> Result<(), String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no traceEvents array")?;
    let mut process_names = 0usize;
    let mut tenant_tracks = 0usize;
    let mut fault_markers = 0usize;
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: no ph"))?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: no name"))?;
        e.get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: no pid"))?;
        match ph {
            "M" => {
                if name == "process_name" {
                    process_names += 1;
                }
                if name == "thread_name"
                    && e.get("pid").and_then(Json::as_u64) == Some(3)
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .is_some_and(|n| n.starts_with("tenant"))
                {
                    tenant_tracks += 1;
                }
            }
            "X" => {
                spans += 1;
                // Spans need ts + dur; ts is a fixed-point decimal string
                // of microseconds in our export.
                for key in ["ts", "dur"] {
                    let ok = match e.get(key) {
                        Some(Json::Num(_)) => true,
                        Some(Json::Str(s)) => s.parse::<f64>().is_ok(),
                        _ => false,
                    };
                    if !ok {
                        return Err(format!("event {i}: span without numeric {key}"));
                    }
                }
            }
            "i" => {
                if name.starts_with("fault ") {
                    fault_markers += 1;
                }
            }
            "C" => {
                // Telemetry counter samples: need a timestamp and at
                // least one numeric arg (the counter value).
                let ts_ok = match e.get("ts") {
                    Some(Json::Num(_)) => true,
                    Some(Json::Str(s)) => s.parse::<f64>().is_ok(),
                    _ => false,
                };
                if !ts_ok {
                    return Err(format!("event {i}: counter without numeric ts"));
                }
                match e.get("args") {
                    Some(Json::Obj(kv)) if !kv.is_empty() => {}
                    _ => return Err(format!("event {i}: counter without args")),
                }
            }
            other => return Err(format!("event {i}: unknown ph '{other}'")),
        }
    }
    // 3 recorder tracks, plus a 4th when telemetry counters are spliced
    // in (`to_perfetto_with_counters`).
    if process_names != 3 && process_names != 4 {
        return Err(format!(
            "expected 3 or 4 process tracks, found {process_names}"
        ));
    }
    if spans == 0 {
        return Err("no duration spans in trace".into());
    }
    if expect_tenant_tracks && tenant_tracks == 0 {
        return Err("no per-tenant thread tracks".into());
    }
    if expect_fault_markers && fault_markers == 0 {
        return Err("no fault-window markers".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_round_trips_the_shapes_we_emit() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":[true,null,2.5],"d":{"e":false}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).unwrap().len(), 3);
        assert_eq!(
            v.get("d").and_then(|d| d.get("e")).and_then(Json::as_bool),
            Some(false)
        );
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    fn mini_trace(lat: &[u64]) -> String {
        let mut s = format!(
            "{{\"format\":\"silo-trace-v1\",\"events\":{},\"dropped\":0,\"tenants\":1}}\n",
            lat.len()
        );
        for (i, l) in lat.iter().enumerate() {
            s.push_str(&format!(
                "{{\"seq\":{i},\"t_ps\":{},\"dur_ps\":{l},\"kind\":\"msg_done\",\"loc\":0,\"aux\":0,\"conn\":0,\"pseq\":0,\"size\":100,\"tenant\":0,\"pkt\":\"none\",\"retx\":false}}\n",
                i * 10
            ));
        }
        s
    }

    #[test]
    fn jsonl_parse_and_diff_locate_first_mismatch() {
        let a = parse_jsonl(&mini_trace(&[5, 6, 7])).unwrap();
        let b = parse_jsonl(&mini_trace(&[5, 9, 7])).unwrap();
        assert!(first_divergence(&a, &a).is_none());
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.index, 1);
        assert_eq!(d.left.unwrap().dur_ps, 6);
        assert_eq!(d.right.unwrap().dur_ps, 9);
    }

    #[test]
    fn diff_reports_prefix_truncation() {
        let a = parse_jsonl(&mini_trace(&[5, 6, 7])).unwrap();
        let b = parse_jsonl(&mini_trace(&[5, 6])).unwrap();
        let d = first_divergence(&a, &b).expect("length mismatch diverges");
        assert_eq!(d.index, 2);
        assert!(d.right.is_none());
    }

    #[test]
    fn header_event_count_is_enforced() {
        let mut s = mini_trace(&[1, 2]);
        let extra = mini_trace(&[3]);
        s.push_str(extra.lines().nth(1).unwrap()); // row not in header count
        s.push('\n');
        assert!(parse_jsonl(&s).is_err());
    }

    #[test]
    fn summarize_names_kinds_and_tenants() {
        let f = parse_jsonl(&mini_trace(&[5_000_000, 6_000_000])).unwrap();
        let s = summarize(&f);
        assert!(s.contains("msg_done"));
        assert!(s.contains("tenant 0: 2 msgs"));
    }
}
