//! Scenario builders: the §6.1 testbed tenants (Table 2) and the §6.2
//! ns2-style tenant population (Table 3) placed by each scheme's placer.

use rand::rngs::StdRng;
use rand::Rng;
use silo_base::{exponential, Bytes, Dur, Rate};
use silo_placement::{Guarantee, LocalityPlacer, OktopusPlacer, Placer, SiloPlacer, TenantRequest};
use silo_simnet::{TenantSpec, TenantWorkload, TransportMode};
use silo_topology::{HostId, Topology};

/// Which placement algorithm seats the tenants (per §6.2: Silo uses its
/// own, Oktopus its bandwidth-aware one, everything else locality-aware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacerKind {
    Silo,
    Oktopus,
    Locality,
}

impl PlacerKind {
    pub fn for_mode(mode: TransportMode) -> PlacerKind {
        match mode {
            TransportMode::Silo => PlacerKind::Silo,
            TransportMode::Okto | TransportMode::OktoPlus => PlacerKind::Oktopus,
            _ => PlacerKind::Locality,
        }
    }
}

/// Table 3 classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NsClass {
    /// Delay-sensitive, all-to-one.
    A,
    /// Bandwidth-sensitive, all-to-all.
    B,
}

/// One generated tenant: its guarantee, class and realized placement.
#[derive(Debug, Clone)]
pub struct NsTenant {
    pub class: NsClass,
    pub guarantee: Guarantee,
    pub spec: TenantSpec,
}

/// Build the §6.2 population: tenants drawn 50/50 from Table 3's classes
/// (bandwidth and burst exponential around the class means), placed until
/// `occupancy` of the VM slots are filled or placement starts failing.
///
/// Returns the placed tenants; rejected draws are skipped (the paper
/// sizes the tenant count by occupied slots, not by offered requests).
pub fn build_ns2_population(
    topo: &Topology,
    placer_kind: PlacerKind,
    occupancy: f64,
    load_a: f64,
    load_b: f64,
    rng: &mut StdRng,
) -> Vec<NsTenant> {
    let mut silo = SiloPlacer::new(topo.clone());
    let mut okto = OktopusPlacer::new(topo.clone());
    let mut loc = LocalityPlacer::new(topo.clone());
    let total_slots = topo.params().num_vm_slots();
    let target = (total_slots as f64 * occupancy) as usize;
    let mut out = Vec::new();
    let mut consecutive_rejects = 0;
    let mut used = 0usize;
    while used < target && consecutive_rejects < 50 {
        let class = if rng.random::<f64>() < 0.5 {
            NsClass::A
        } else {
            NsClass::B
        };
        // Tenant sizes: class A is an OLDI aggregation group big enough
        // that a simultaneous burst stresses a shallow port (16–32 VMs);
        // class B a small data-parallel job (8–16 VMs).
        let n = match class {
            // Paper-scale OLDI aggregation groups (mean tenant ≈ 36 VMs):
            // a simultaneous burst of ~35 × 15 KB ≈ 500 KB must be able
            // to overwhelm a 312 KB port — that is the whole point of
            // burst-aware admission.
            NsClass::A => 24 + (rng.random::<u64>() % 25) as usize,
            NsClass::B => 8 + (rng.random::<u64>() % 9) as usize,
        };
        let guarantee = match class {
            NsClass::A => Guarantee {
                b: Rate::from_bps(
                    (exponential(rng, 1.0 / 0.25e9) as u64).clamp(50_000_000, 1_000_000_000),
                ),
                s: Bytes((exponential(rng, 1.0 / 15_000.0) as u64).clamp(1_500, 60_000)),
                bmax: Rate::from_gbps(1),
                delay: Some(Dur::from_us(1000)),
            },
            NsClass::B => {
                let b = Rate::from_bps(
                    (exponential(rng, 1.0 / 2e9) as u64).clamp(250_000_000, 5_000_000_000),
                );
                Guarantee {
                    b,
                    s: Bytes(1500),
                    // Bandwidth-only tenants burst no faster than their
                    // sustained guarantee (Bmax = B, Table 3 has no Bmax
                    // for class B).
                    bmax: b,
                    delay: None,
                }
            }
        };
        let req = TenantRequest::new(n, guarantee);
        let placed = match placer_kind {
            PlacerKind::Silo => silo.try_place(&req),
            PlacerKind::Oktopus => okto.try_place(&req),
            PlacerKind::Locality => loc.try_place(&req),
        };
        let Ok(p) = placed else {
            consecutive_rejects += 1;
            continue;
        };
        consecutive_rejects = 0;
        used += n;
        let mut vm_hosts: Vec<HostId> = Vec::with_capacity(n);
        for &(h, k) in &p.hosts {
            for _ in 0..k {
                vm_hosts.push(h);
            }
        }
        let workload = match class {
            NsClass::A => {
                // All VMs burst a message to VM 0 at once; the offered
                // aggregate at the receiver averages `load × B`. Each
                // response is sized to ride the burst allowance, which is
                // what the allowance is *for*.
                let msg_mean = Bytes((guarantee.s.as_u64() * 9) / 10);
                let interval_s = (n - 1) as f64 * msg_mean.bits() as f64
                    / (load_a * guarantee.b.as_bps() as f64);
                TenantWorkload::OldiAllToOne {
                    msg_mean,
                    interval: Dur::from_secs_f64(interval_s.max(1e-6)),
                }
            }
            NsClass::B => {
                // Continuously backlogged all-to-all shuffle: completion
                // is dictated purely by achieved bandwidth (§6.2). One
                // message per pair in flight at a time.
                let _ = load_b;
                TenantWorkload::BulkAllToAll {
                    msg: Bytes::from_mb(1),
                }
            }
        };
        out.push(NsTenant {
            class,
            guarantee,
            spec: TenantSpec {
                vm_hosts,
                b: guarantee.b,
                s: guarantee.s,
                bmax: guarantee.bmax,
                prio: 0,
                // Violation checking stays off in the headline scenarios:
                // outputs must be byte-stable against the goldens. Fault
                // sweeps opt in per-tenant.
                delay: None,
                workload,
            },
        });
    }
    out
}

/// Table 2's testbed requests: tenant A's bandwidth guarantee per
/// requirement level, with tenant B taking the rest of the 10 G links.
#[derive(Debug, Clone, Copy)]
pub struct TestbedReq {
    pub name: &'static str,
    pub a_bw: Rate,
    pub b_bw: Rate,
}

pub const TESTBED_REQS: [TestbedReq; 3] = [
    TestbedReq {
        name: "req1",
        a_bw: Rate(210_000_000),
        b_bw: Rate(3_123_000_000),
    },
    TestbedReq {
        name: "req2",
        a_bw: Rate(315_000_000),
        b_bw: Rate(3_018_000_000),
    },
    TestbedReq {
        name: "req3",
        a_bw: Rate(420_000_000),
        b_bw: Rate(2_913_000_000),
    },
];

/// ETC client load factor that makes tenant A's average offered bandwidth
/// match the paper's measured 210 Mbps (≈ 4.7 k req/s per client against
/// the raw trace's 52.7 k/s).
pub const ETC_TESTBED_LOAD: f64 = 0.09;

/// The §6.1 testbed tenants: A = memcached (15 VMs, 3 per server, VM 0
/// the server), B = netperf all-to-all (15 VMs), per Table 2.
///
/// `burst` overrides tenant A's burst allowance (the paper also tries
/// 3 KB); `with_b` drops tenant B for the "idle" baseline.
pub fn testbed_tenants(req: &TestbedReq, burst: Bytes, with_b: bool, load: f64) -> Vec<TenantSpec> {
    // 5 servers x 6 slots; A gets 3 slots per server, B the other 3.
    let a_hosts: Vec<HostId> = (0..5u32).flat_map(|h| [HostId(h); 3]).collect();
    let b_hosts = a_hosts.clone();
    let mut tenants = vec![TenantSpec {
        vm_hosts: a_hosts,
        b: req.a_bw,
        s: burst,
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: None,
        workload: TenantWorkload::Etc {
            load,
            concurrency: 4,
        },
    }];
    if with_b {
        tenants.push(TenantSpec {
            vm_hosts: b_hosts,
            b: req.b_bw,
            s: Bytes(1500),
            bmax: req.b_bw,
            prio: 0,
            delay: None,
            workload: TenantWorkload::BulkAllToAll {
                msg: Bytes::from_mb(1),
            },
        });
    }
    tenants
}
