//! Reader side of the windowed-telemetry interchange formats: the
//! `silo-telemetry-v1` JSONL loader, the first-divergence locator behind
//! `silo-top diff`, the per-tenant margin/goodput renderer behind
//! `silo-top show`, and a grammar lint for the OpenMetrics exposition.
//! The JSON parser lives in [`silo_base::json`] and is re-exported from
//! [`crate::tracefile`].

use crate::tracefile::Json;
use std::fmt::Write as _;

/// What one JSONL row describes (the writer emits one global row per
/// window, one row per tenant, and a sparse row per active port).
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryKind {
    Global {
        wire_data: u64,
        wire_void: u64,
        faults: Vec<u64>,
    },
    Tenant {
        tenant: u64,
        goodput: u64,
        completions: u64,
        p99_ps: Option<u64>,
        margin_min_ps: Option<i64>,
        queue_wait_ps: u64,
        token_wait_ps: u64,
        rtos: u64,
    },
    Port {
        port: u64,
        busy_ps: u64,
        tx_bytes: u64,
        drops: u64,
        ce: u64,
        depth: u64,
    },
}

/// One row of a silo-telemetry-v1 file. `raw` keeps the exact source
/// line for byte-level diff reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRow {
    pub w: u64,
    pub kind: TelemetryKind,
    pub raw: String,
}

/// A loaded silo-telemetry-v1 file: the header's geometry plus every row
/// in file order.
#[derive(Debug, Clone)]
pub struct TelemetryFile {
    pub interval_ps: u64,
    pub windows: u64,
    pub tenants: u64,
    pub ports: u64,
    pub port_labels: Vec<String>,
    pub rows: Vec<TelemetryRow>,
}

/// Parse the JSONL interchange format ([`TelemetryLog::to_jsonl`]'s
/// output): a header object, then window-ordered rows.
///
/// [`TelemetryLog::to_jsonl`]: silo_simnet::TelemetryLog::to_jsonl
pub fn parse_telemetry(text: &str) -> Result<TelemetryFile, String> {
    let mut lines = text.lines();
    let header_line = lines.next().ok_or("empty telemetry file")?;
    let header = Json::parse(header_line).map_err(|e| format!("header: {e}"))?;
    match header.get("format").and_then(Json::as_str) {
        Some("silo-telemetry-v1") => {}
        other => return Err(format!("not a silo-telemetry-v1 file (format: {other:?})")),
    }
    let field = |obj: &Json, line: usize, key: &str| -> Result<u64, String> {
        obj.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {line}: missing integer field '{key}'"))
    };
    let port_labels = header
        .get("port_labels")
        .and_then(Json::as_arr)
        .ok_or("header: missing port_labels array")?
        .iter()
        .map(|l| {
            l.as_str()
                .map(str::to_string)
                .ok_or_else(|| "header: non-string port label".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut file = TelemetryFile {
        interval_ps: field(&header, 1, "interval_ps")?,
        windows: field(&header, 1, "windows")?,
        tenants: field(&header, 1, "tenants")?,
        ports: field(&header, 1, "ports")?,
        port_labels,
        rows: Vec::new(),
    };
    if file.port_labels.len() as u64 != file.ports {
        return Err(format!(
            "header claims {} ports but labels {}",
            file.ports,
            file.port_labels.len()
        ));
    }
    let mut expect_w = 0u64; // rows arrive window-ordered
    for (n, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = n + 2;
        let v = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let w = field(&v, lineno, "w")?;
        if w >= file.windows {
            return Err(format!(
                "line {lineno}: window {w} outside header's {}",
                file.windows
            ));
        }
        if w < expect_w.saturating_sub(1) || w > expect_w {
            return Err(format!("line {lineno}: window {w} out of order"));
        }
        expect_w = expect_w.max(w + 1);
        // Optional sub-fields keep `null` distinct from a real sample.
        let opt_u64 = |key: &str| v.get(key).and_then(Json::as_u64);
        let opt_i64 = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .filter(|n| n.fract() == 0.0)
                .map(|n| n as i64)
        };
        let kind = if let Some(tenant) = opt_u64("tenant") {
            TelemetryKind::Tenant {
                tenant,
                goodput: field(&v, lineno, "goodput")?,
                completions: field(&v, lineno, "completions")?,
                p99_ps: opt_u64("p99_ps"),
                margin_min_ps: opt_i64("margin_min_ps"),
                queue_wait_ps: field(&v, lineno, "queue_wait_ps")?,
                token_wait_ps: field(&v, lineno, "token_wait_ps")?,
                rtos: field(&v, lineno, "rtos")?,
            }
        } else if let Some(port) = opt_u64("port") {
            TelemetryKind::Port {
                port,
                busy_ps: field(&v, lineno, "busy_ps")?,
                tx_bytes: field(&v, lineno, "tx_bytes")?,
                drops: field(&v, lineno, "drops")?,
                ce: field(&v, lineno, "ce")?,
                depth: field(&v, lineno, "depth")?,
            }
        } else {
            let faults = v
                .get("faults")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("line {lineno}: global row without faults array"))?
                .iter()
                .map(|f| {
                    f.as_u64()
                        .ok_or_else(|| format!("line {lineno}: non-integer fault id"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            TelemetryKind::Global {
                wire_data: field(&v, lineno, "wire_data")?,
                wire_void: field(&v, lineno, "wire_void")?,
                faults,
            }
        };
        file.rows.push(TelemetryRow {
            w,
            kind,
            raw: line.to_string(),
        });
    }
    if expect_w != file.windows {
        return Err(format!(
            "header claims {} windows, file holds rows for {expect_w}",
            file.windows
        ));
    }
    Ok(file)
}

/// Where two telemetry files first part ways.
#[derive(Debug, Clone)]
pub struct TelemetryDivergence {
    /// Row index (0-based into `rows`) of the first mismatch; equals the
    /// shorter file's length when one file is a strict prefix.
    pub index: usize,
    pub left: Option<TelemetryRow>,
    pub right: Option<TelemetryRow>,
}

impl TelemetryDivergence {
    /// Human-readable report: which window and series split first, and
    /// both files' raw view of that sample.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let at = |r: &Option<TelemetryRow>| match r {
            Some(r) => {
                let series = match &r.kind {
                    TelemetryKind::Global { .. } => "global".to_string(),
                    TelemetryKind::Tenant { tenant, .. } => format!("tenant {tenant}"),
                    TelemetryKind::Port { port, .. } => format!("port {port}"),
                };
                format!("window {}  {series}", r.w)
            }
            None => "<end of file>".to_string(),
        };
        let _ = writeln!(out, "first divergent sample: row {}", self.index);
        let _ = writeln!(out, "  left:  {}", at(&self.left));
        let _ = writeln!(out, "  right: {}", at(&self.right));
        if let (Some(l), Some(r)) = (&self.left, &self.right) {
            let _ = writeln!(out, "  left raw:  {}", l.raw);
            let _ = writeln!(out, "  right raw: {}", r.raw);
        }
        out
    }
}

/// Locate the first sample where two telemetry files disagree
/// (byte-level on the canonical row encoding). `None` means identical —
/// including the headers' geometry, which is checked first.
pub fn telemetry_divergence(
    a: &TelemetryFile,
    b: &TelemetryFile,
) -> Result<Option<TelemetryDivergence>, String> {
    if (a.interval_ps, a.windows, a.tenants, a.ports)
        != (b.interval_ps, b.windows, b.tenants, b.ports)
    {
        return Err(format!(
            "incomparable geometries: {}x{} ps / {} tenants / {} ports vs {}x{} ps / {} tenants / {} ports",
            a.windows, a.interval_ps, a.tenants, a.ports,
            b.windows, b.interval_ps, b.tenants, b.ports
        ));
    }
    let n = a.rows.len().min(b.rows.len());
    for i in 0..n {
        if a.rows[i].raw != b.rows[i].raw {
            return Ok(Some(TelemetryDivergence {
                index: i,
                left: Some(a.rows[i].clone()),
                right: Some(b.rows[i].clone()),
            }));
        }
    }
    if a.rows.len() != b.rows.len() {
        return Ok(Some(TelemetryDivergence {
            index: n,
            left: a.rows.get(n).cloned(),
            right: b.rows.get(n).cloned(),
        }));
    }
    Ok(None)
}

fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// `silo-top show`: per-tenant guarantee headlines, then the per-window
/// margin/goodput table for every tenant. Fault-overlapped windows are
/// tagged in the rightmost column; a `!` margin marks a violation (the
/// window's worst completion finished past its bound).
pub fn render_top(f: &TelemetryFile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} windows x {:.3} ms  |  {} tenants, {} ports",
        f.windows,
        f.interval_ps as f64 / 1e9,
        f.tenants,
        f.ports
    );
    // Gather per-window fault tags and per-tenant series from the rows.
    let mut faults: Vec<Vec<u64>> = vec![Vec::new(); f.windows as usize];
    for r in &f.rows {
        if let TelemetryKind::Global { faults: fs, .. } = &r.kind {
            faults[r.w as usize] = fs.clone();
        }
    }
    for t in 0..f.tenants {
        let series: Vec<&TelemetryRow> = f
            .rows
            .iter()
            .filter(|r| matches!(&r.kind, TelemetryKind::Tenant { tenant, .. } if *tenant == t))
            .collect();
        let mut goodput = 0u64;
        let mut compl = 0u64;
        let mut rtos = 0u64;
        let mut min_margin: Option<i64> = None;
        let mut violated = 0u64;
        for r in &series {
            if let TelemetryKind::Tenant {
                goodput: g,
                completions: c,
                margin_min_ps,
                rtos: rt,
                ..
            } = &r.kind
            {
                goodput += g;
                compl += c;
                rtos += rt;
                if let Some(m) = margin_min_ps {
                    min_margin = Some(min_margin.map_or(*m, |p| p.min(*m)));
                    if *m < 0 {
                        violated += 1;
                    }
                }
            }
        }
        let margin = match min_margin {
            Some(m) => format!("min margin {:.1} us", m as f64 / 1e6),
            None => "no delay guarantee".to_string(),
        };
        let _ = writeln!(
            out,
            "tenant {t}: {compl} msgs  {:.3} MB  {margin}  violated windows {violated}  rtos {rtos}",
            goodput as f64 / 1e6
        );
    }
    for t in 0..f.tenants {
        let _ = writeln!(
            out,
            "tenant {t}\n{:>5} {:>12} {:>7} {:>11} {:>12} {:>11} {:>11}  flags",
            "w", "goodput", "compl", "p99_us", "margin_us", "q_wait_us", "t_wait_us"
        );
        for r in &f.rows {
            let TelemetryKind::Tenant {
                tenant,
                goodput,
                completions,
                p99_ps,
                margin_min_ps,
                queue_wait_ps,
                token_wait_ps,
                rtos,
            } = &r.kind
            else {
                continue;
            };
            if *tenant != t {
                continue;
            }
            let p99 = p99_ps.map_or("-".to_string(), |p| format!("{:.1}", us(p)));
            let margin = margin_min_ps.map_or("-".to_string(), |m| {
                format!("{}{:.1}", if m < 0 { "!" } else { "" }, m as f64 / 1e6)
            });
            let mut flags = String::new();
            if !faults[r.w as usize].is_empty() {
                let ids: Vec<String> = faults[r.w as usize].iter().map(u64::to_string).collect();
                flags.push_str(&format!("fault[{}]", ids.join(",")));
            }
            if *rtos > 0 {
                if !flags.is_empty() {
                    flags.push(' ');
                }
                flags.push_str(&format!("rto x{rtos}"));
            }
            let _ = writeln!(
                out,
                "{:>5} {:>12} {:>7} {:>11} {:>12} {:>11.1} {:>11.1}  {flags}",
                r.w,
                goodput,
                completions,
                p99,
                margin,
                us(*queue_wait_ps),
                us(*token_wait_ps)
            );
        }
    }
    out
}

/// Write the exports requested by `--telemetry` /
/// `--telemetry-openmetrics` from a finished recording and announce the
/// paths on stdout — the shared tail of every Args binary that records
/// telemetry.
pub fn write_telemetry_outputs(args: &crate::Args, log: &silo_simnet::TelemetryLog) {
    if let Some(path) = &args.telemetry {
        std::fs::write(path, log.to_jsonl()).expect("write telemetry jsonl");
        println!(
            "telemetry: {} windows x {:.3} ms -> {path} (inspect with silo-top)",
            log.windows,
            log.interval.as_ps() as f64 / 1e9
        );
    }
    if let Some(path) = &args.telemetry_openmetrics {
        std::fs::write(path, log.to_openmetrics()).expect("write openmetrics text");
        println!("openmetrics exposition -> {path}");
    }
}

/// Grammar lint of an OpenMetrics text exposition
/// ([`TelemetryLog::to_openmetrics`]'s output): every family declares
/// `# HELP` then `# TYPE ... gauge` before its samples, every sample
/// line parses as `name[{label="v"}] value timestamp`, and the file ends
/// with the mandatory `# EOF` terminator.
///
/// [`TelemetryLog::to_openmetrics`]: silo_simnet::TelemetryLog::to_openmetrics
pub fn openmetrics_lint(text: &str) -> Result<usize, String> {
    if !text.ends_with("# EOF\n") {
        return Err("missing '# EOF' terminator".into());
    }
    let mut declared: Vec<String> = Vec::new();
    let mut pending_help: Option<String> = None;
    let mut samples = 0usize;
    let total_lines = text.lines().count();
    for (n, line) in text.lines().enumerate() {
        let lineno = n + 1;
        if line == "# EOF" {
            if n + 1 != total_lines {
                return Err(format!("line {lineno}: content after # EOF"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or_default();
            if name.is_empty() || rest.len() == name.len() {
                return Err(format!("line {lineno}: HELP without name and text"));
            }
            pending_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let (name, ty) = (
                parts.next().unwrap_or_default(),
                parts.next().unwrap_or_default(),
            );
            if ty != "gauge" {
                return Err(format!("line {lineno}: unsupported metric type '{ty}'"));
            }
            if pending_help.take().as_deref() != Some(name) {
                return Err(format!("line {lineno}: TYPE for '{name}' without its HELP"));
            }
            declared.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: unknown comment line"));
        }
        // Sample: name[{label="value"}] value timestamp
        let (series, rest) = match line.find(' ') {
            Some(i) => (&line[..i], &line[i + 1..]),
            None => return Err(format!("line {lineno}: sample without value")),
        };
        let name = series.split('{').next().unwrap_or_default();
        if !declared.iter().any(|d| d == name) {
            return Err(format!(
                "line {lineno}: sample for undeclared family '{name}'"
            ));
        }
        if let Some(labels) = series.strip_prefix(name) {
            let well_formed = labels.is_empty()
                || (labels.starts_with('{')
                    && labels.ends_with('}')
                    && labels.contains("=\"")
                    && labels[1..labels.len() - 1].ends_with('"'));
            if !well_formed {
                return Err(format!("line {lineno}: malformed label set '{labels}'"));
            }
        }
        let mut parts = rest.split(' ');
        let (value, ts) = (
            parts.next().unwrap_or_default(),
            parts.next().unwrap_or_default(),
        );
        if parts.next().is_some() {
            return Err(format!("line {lineno}: trailing fields after timestamp"));
        }
        if value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: non-numeric value '{value}'"));
        }
        if ts.parse::<f64>().is_err() || !ts.contains('.') {
            return Err(format!(
                "line {lineno}: timestamp '{ts}' is not fixed-point seconds"
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".into());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini(goodput0: u64) -> String {
        let mut s = String::from(
            "{\"format\":\"silo-telemetry-v1\",\"interval_ps\":1000000000,\"windows\":2,\"tenants\":1,\"ports\":2,\"port_labels\":[\"nic_p0\",\"sw_p0\"]}\n",
        );
        for w in 0..2u64 {
            s.push_str(&format!(
                "{{\"w\":{w},\"wire_data\":10,\"wire_void\":0,\"faults\":[]}}\n"
            ));
            s.push_str(&format!(
                "{{\"w\":{w},\"tenant\":0,\"goodput\":{},\"completions\":1,\"p99_ps\":500000,\"margin_min_ps\":-250,\"queue_wait_ps\":7,\"token_wait_ps\":0,\"rtos\":0}}\n",
                if w == 0 { goodput0 } else { 5 }
            ));
        }
        s.push_str("{\"w\":1,\"port\":1,\"busy_ps\":9,\"tx_bytes\":100,\"drops\":0,\"ce\":0,\"depth\":3}\n");
        s
    }

    #[test]
    fn parse_types_every_row_shape() {
        let f = parse_telemetry(&mini(42)).unwrap();
        assert_eq!(f.windows, 2);
        assert_eq!(f.port_labels, vec!["nic_p0", "sw_p0"]);
        assert_eq!(f.rows.len(), 5);
        assert!(matches!(
            f.rows[1].kind,
            TelemetryKind::Tenant {
                goodput: 42,
                margin_min_ps: Some(-250),
                ..
            }
        ));
        assert!(matches!(
            f.rows[4].kind,
            TelemetryKind::Port { depth: 3, .. }
        ));
    }

    #[test]
    fn header_geometry_is_enforced() {
        let truncated: String = mini(42).lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(parse_telemetry(&truncated).unwrap_err().contains("windows"));
        assert!(parse_telemetry("").is_err());
        assert!(parse_telemetry("{\"format\":\"silo-trace-v1\"}\n").is_err());
    }

    #[test]
    fn diff_locates_first_divergent_sample() {
        let a = parse_telemetry(&mini(42)).unwrap();
        let b = parse_telemetry(&mini(43)).unwrap();
        assert!(telemetry_divergence(&a, &a).unwrap().is_none());
        let d = telemetry_divergence(&a, &b).unwrap().expect("diverges");
        assert_eq!(d.index, 1);
        assert!(d.report().contains("window 0  tenant 0"));
    }

    #[test]
    fn incomparable_geometries_error_out() {
        let a = parse_telemetry(&mini(42)).unwrap();
        let mut b = parse_telemetry(&mini(42)).unwrap();
        b.interval_ps += 1;
        assert!(telemetry_divergence(&a, &b).is_err());
    }

    #[test]
    fn render_top_headlines_margin_and_flags_violations() {
        let f = parse_telemetry(&mini(42)).unwrap();
        let top = render_top(&f);
        assert!(top.contains("tenant 0: 2 msgs"));
        assert!(top.contains("min margin -0.0 us"));
        assert!(top.contains("violated windows 2"));
        assert!(top.contains("!-0.0"), "violation flag: {top}");
    }

    #[test]
    fn openmetrics_lint_accepts_the_grammar_and_rejects_breakage() {
        let good = "# HELP silo_goodput_bytes help text\n# TYPE silo_goodput_bytes gauge\nsilo_goodput_bytes{tenant=\"0\"} 42 0.001000\n# EOF\n";
        assert_eq!(openmetrics_lint(good), Ok(1));
        assert!(openmetrics_lint("silo_x 1 0.1\n# EOF\n")
            .unwrap_err()
            .contains("undeclared"));
        assert!(openmetrics_lint(&good.replace("# EOF\n", ""))
            .unwrap_err()
            .contains("EOF"));
        assert!(openmetrics_lint(&good.replace(" 0.001000", ""))
            .unwrap_err()
            .contains("timestamp"));
        assert!(
            openmetrics_lint(&good.replace("# TYPE silo_goodput_bytes gauge\n", ""))
                .unwrap_err()
                .contains("undeclared")
        );
    }
}
