//! The shared §6.2 packet-level comparison run used by Figs. 12–14 and
//! Table 4: one tenant population per scheme, simulated under that
//! scheme's datapath, with per-message latency estimates for
//! normalization.

use crate::args::Args;
use crate::scenario::{build_ns2_population, NsClass, NsTenant, PlacerKind};
use silo_base::{seeded_rng, Bytes, Dur};
use silo_simnet::{Metrics, Sim, SimConfig, TransportMode};
use silo_topology::{Topology, TreeParams};

/// Result of one scheme's run(s): the placed tenants of the *last* run
/// and message metrics concatenated over all runs (tenant ids offset per
/// run so per-tenant statistics stay separable).
pub struct Ns2Outcome {
    pub mode: TransportMode,
    /// Per-run tenant metadata, parallel to each run's metrics tenant ids.
    pub tenants: Vec<Vec<NsTenant>>,
    pub metrics: Vec<Metrics>,
}

impl Ns2Outcome {
    pub fn tenant_meta(&self, run: usize, tenant: u16) -> &NsTenant {
        &self.tenants[run][tenant as usize]
    }

    /// §4.1 latency estimate for a message of `size` bytes from a tenant.
    ///
    /// Class A: `M/Bmax + d` (M ≤ S) else `S/Bmax + (M−S)/B + d`.
    /// Class B (no delay guarantee): `M` at the guaranteed hose share
    /// `B/(n−1)` of its all-to-all pattern.
    pub fn estimate_us(&self, run: usize, tenant: u16, size: u64) -> f64 {
        let t = self.tenant_meta(run, tenant);
        match t.class {
            NsClass::A => t
                .guarantee
                .message_latency_bound(Bytes(size))
                .expect("class A has a delay guarantee")
                .as_us_f64(),
            NsClass::B => {
                let n = t.spec.vm_hosts.len() as f64;
                let share = t.guarantee.b.as_bps() as f64 / (n - 1.0).max(1.0);
                size as f64 * 8.0 / share * 1e6
            }
        }
    }
}

/// Build the ns2-scale topology at the requested scale factor.
pub fn ns2_topology(scale: f64) -> Topology {
    Topology::build(TreeParams::ns2_scaled(scale))
}

/// One independent simulation cell of a §6.2 sweep: a scheme and a seed.
/// Cells are self-contained — each builds its own topology, population and
/// `Sim` — so the runner can execute them in any order on any number of
/// threads without changing results.
#[derive(Debug, Clone, Copy)]
pub struct Ns2Cell {
    pub mode: TransportMode,
    pub run: usize,
    pub seed: u64,
}

/// The `(mode × run)` cell grid for a sweep, in fixed output order.
pub fn ns2_cells(modes: &[TransportMode], args: &Args) -> Vec<Ns2Cell> {
    modes
        .iter()
        .flat_map(|&mode| {
            (0..args.runs).map(move |run| Ns2Cell {
                mode,
                run,
                seed: args.seed + run as u64 * 1_000,
            })
        })
        .collect()
}

/// Engine cost knobs for before/after benchmarking. Both are pure
/// engine-side switches: physical results are byte-identical across every
/// combination (the simnet differential suite and `bench_simnet` assert
/// it), only wall-clock and event-queue counters move.
#[derive(Debug, Clone, Copy)]
pub struct EngineOpts {
    pub queue: silo_base::QueueBackend,
    /// `SimConfig::cancel_timers`: off reproduces the tombstone timer
    /// scheme (the pre-cancellation engine) for baseline phases.
    pub cancel_timers: bool,
    /// Attach the invariant-audit layer (`SimConfig::audit`, default
    /// config). Pure observation: physical results stay byte-identical;
    /// the report lands in `Metrics::audit`.
    pub audit: bool,
    /// Attach the flight recorder (`SimConfig::trace`, default ring
    /// sizes). Pure observation like `audit`: physics stay
    /// byte-identical; the log lands in `Metrics::trace`.
    pub trace: bool,
    /// Attach the windowed telemetry recorder (`SimConfig::telemetry`,
    /// default 1 ms windows). Pure observation like `audit`/`trace`:
    /// physics stay byte-identical; the log lands in
    /// `Metrics::telemetry`.
    pub telemetry: bool,
    /// Hot-path event diet (`SimConfig::coalesce_voids` +
    /// `SimConfig::elide_nic_pulls`). Off reproduces the pre-diet engine
    /// — one event per void chunk, one pull per batch boundary — for the
    /// `void_coalesce` before/after phase.
    pub coalesce: bool,
    /// Within-cell partition count (`SimConfig::shards`). Like every
    /// other knob here, byte-identical physics at any value; only
    /// wall-clock moves.
    pub shards: u32,
    /// Window-prepare worker threads for the sharded engine
    /// (`SimConfig::shard_threads`).
    pub shard_threads: usize,
}

impl Default for EngineOpts {
    fn default() -> EngineOpts {
        EngineOpts {
            queue: silo_base::QueueBackend::default(),
            cancel_timers: true,
            audit: false,
            trace: false,
            telemetry: false,
            coalesce: true,
            shards: 1,
            shard_threads: 1,
        }
    }
}

/// Execute one cell: place a population and run the packet simulator.
pub fn run_ns2_cell(cell: &Ns2Cell, args: &Args) -> (Vec<NsTenant>, Metrics) {
    run_ns2_cell_with_engine(
        cell,
        args,
        EngineOpts {
            shards: args.shards,
            shard_threads: args.shard_threads,
            ..EngineOpts::default()
        },
    )
}

/// [`run_ns2_cell`] with explicit engine knobs — the simnet
/// microbenchmark runs the same cells across queue backends and the
/// timer-cancellation toggle to measure engine speedups.
pub fn run_ns2_cell_with_engine(
    cell: &Ns2Cell,
    args: &Args,
    eng: EngineOpts,
) -> (Vec<NsTenant>, Metrics) {
    let topo = ns2_topology(args.scale);
    let mut rng = seeded_rng(cell.seed);
    // Class A offers half its hose on average (bursty OLDI); class B
    // is near-backlogged (large transfers limited by bandwidth).
    let tenants = build_ns2_population(
        &topo,
        PlacerKind::for_mode(cell.mode),
        args.occupancy,
        0.4,
        0.9,
        &mut rng,
    );
    // (Oktopus's no-burst semantics are applied by Sim::new itself.)
    let mut cfg = SimConfig::new(cell.mode, Dur::from_ms(args.duration_ms), cell.seed);
    cfg.queue = eng.queue;
    cfg.cancel_timers = eng.cancel_timers;
    cfg.coalesce_voids = eng.coalesce;
    cfg.elide_nic_pulls = eng.coalesce;
    cfg.shards = eng.shards;
    cfg.shard_threads = eng.shard_threads;
    if eng.audit {
        cfg.audit = Some(silo_simnet::AuditConfig::default());
    }
    if eng.trace {
        cfg.trace = Some(silo_simnet::TraceConfig::default());
    }
    if eng.telemetry {
        cfg.telemetry = Some(silo_simnet::TelemetryConfig::default());
    }
    let specs = tenants.iter().map(|t| t.spec.clone()).collect();
    let m = Sim::new(topo, cfg, specs).run();
    (tenants, m)
}

/// Run several schemes' sweeps at once, fanned across worker threads
/// (`args.threads`, 0 = one per core). Outcomes come back in `modes`
/// order with runs in seed order — bit-identical to the serial loop this
/// replaces, at any thread count.
pub fn run_ns2_sweep(modes: &[TransportMode], args: &Args) -> Vec<Ns2Outcome> {
    let cells = ns2_cells(modes, args);
    let threads = args.effective_threads(cells.len());
    let results = crate::runner::run_cells(&cells, threads, |_, cell| run_ns2_cell(cell, args));
    let mut outcomes: Vec<Ns2Outcome> = modes
        .iter()
        .map(|&mode| Ns2Outcome {
            mode,
            tenants: Vec::with_capacity(args.runs),
            metrics: Vec::with_capacity(args.runs),
        })
        .collect();
    for (cell, (tenants, metrics)) in cells.iter().zip(results) {
        let slot = modes
            .iter()
            .position(|&m| m == cell.mode)
            .expect("cell mode");
        outcomes[slot].tenants.push(tenants);
        outcomes[slot].metrics.push(metrics);
    }
    outcomes
}

/// Run one scheme over `args.runs` seeds (a single-mode sweep).
pub fn run_ns2(mode: TransportMode, args: &Args) -> Ns2Outcome {
    run_ns2_sweep(&[mode], args)
        .pop()
        .expect("one mode in, one outcome out")
}

/// All six schemes of Fig. 12.
pub const ALL_MODES: [TransportMode; 6] = [
    TransportMode::Silo,
    TransportMode::Tcp,
    TransportMode::Dctcp,
    TransportMode::Hull,
    TransportMode::Okto,
    TransportMode::OktoPlus,
];
