//! The shared §6.2 packet-level comparison run used by Figs. 12–14 and
//! Table 4: one tenant population per scheme, simulated under that
//! scheme's datapath, with per-message latency estimates for
//! normalization.

use crate::args::Args;
use crate::scenario::{build_ns2_population, NsClass, NsTenant, PlacerKind};
use silo_base::{seeded_rng, Bytes, Dur};
use silo_simnet::{Metrics, Sim, SimConfig, TransportMode};
use silo_topology::{Topology, TreeParams};

/// Result of one scheme's run(s): the placed tenants of the *last* run
/// and message metrics concatenated over all runs (tenant ids offset per
/// run so per-tenant statistics stay separable).
pub struct Ns2Outcome {
    pub mode: TransportMode,
    /// Per-run tenant metadata, parallel to each run's metrics tenant ids.
    pub tenants: Vec<Vec<NsTenant>>,
    pub metrics: Vec<Metrics>,
}

impl Ns2Outcome {
    pub fn tenant_meta(&self, run: usize, tenant: u16) -> &NsTenant {
        &self.tenants[run][tenant as usize]
    }

    /// §4.1 latency estimate for a message of `size` bytes from a tenant.
    ///
    /// Class A: `M/Bmax + d` (M ≤ S) else `S/Bmax + (M−S)/B + d`.
    /// Class B (no delay guarantee): `M` at the guaranteed hose share
    /// `B/(n−1)` of its all-to-all pattern.
    pub fn estimate_us(&self, run: usize, tenant: u16, size: u64) -> f64 {
        let t = self.tenant_meta(run, tenant);
        match t.class {
            NsClass::A => t
                .guarantee
                .message_latency_bound(Bytes(size))
                .expect("class A has a delay guarantee")
                .as_us_f64(),
            NsClass::B => {
                let n = t.spec.vm_hosts.len() as f64;
                let share = t.guarantee.b.as_bps() as f64 / (n - 1.0).max(1.0);
                size as f64 * 8.0 / share * 1e6
            }
        }
    }
}

/// Build the ns2-scale topology at the requested scale factor.
pub fn ns2_topology(scale: f64) -> Topology {
    Topology::build(TreeParams::ns2_scaled(scale))
}

/// Run one scheme over `args.runs` seeds.
pub fn run_ns2(mode: TransportMode, args: &Args) -> Ns2Outcome {
    let topo = ns2_topology(args.scale);
    let mut tenants_all = Vec::new();
    let mut metrics_all = Vec::new();
    for run in 0..args.runs {
        let seed = args.seed + run as u64 * 1_000;
        let mut rng = seeded_rng(seed);
        // Class A offers half its hose on average (bursty OLDI); class B
        // is near-backlogged (large transfers limited by bandwidth).
        let tenants = build_ns2_population(
            &topo,
            PlacerKind::for_mode(mode),
            args.occupancy,
            0.4,
            0.9,
            &mut rng,
        );
        // (Oktopus's no-burst semantics are applied by Sim::new itself.)
        let cfg = SimConfig::new(mode, Dur::from_ms(args.duration_ms), seed);
        let specs = tenants.iter().map(|t| t.spec.clone()).collect();
        let m = Sim::new(topo.clone(), cfg, specs).run();
        tenants_all.push(tenants);
        metrics_all.push(m);
    }
    Ns2Outcome {
        mode,
        tenants: tenants_all,
        metrics: metrics_all,
    }
}

/// All six schemes of Fig. 12.
pub const ALL_MODES: [TransportMode; 6] = [
    TransportMode::Silo,
    TransportMode::Tcp,
    TransportMode::Dctcp,
    TransportMode::Hull,
    TransportMode::Okto,
    TransportMode::OktoPlus,
];
