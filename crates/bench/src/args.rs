//! Minimal CLI parsing (no external crates).

/// Common experiment knobs.
#[derive(Debug, Clone)]
pub struct Args {
    pub scale: f64,
    pub seed: u64,
    pub duration_ms: u64,
    pub runs: usize,
    pub occupancy: f64,
    /// Worker threads for sweep cells; 0 = one per available core.
    pub threads: usize,
    /// `bench_simnet --profile`: print the event-profile table for one
    /// cell instead of running the full benchmark grid.
    pub profile: bool,
    /// Run with the invariant-audit layer enabled (`SimConfig::audit`)
    /// and fail on unattributed violations. Physics are unchanged; only
    /// wall-clock and the audit report differ.
    pub audit: bool,
    /// Record a flight-recorder trace (`SimConfig::trace`) and write the
    /// compact JSONL event stream to this path. Physics are unchanged
    /// (the simnet trace suite asserts byte-identity); only wall-clock
    /// and the exported file differ.
    pub trace: Option<String>,
    /// Also write the Chrome/Perfetto `trace_event` JSON to this path
    /// (open at <https://ui.perfetto.dev>). Implies trace recording.
    pub trace_perfetto: Option<String>,
    /// Run with the hot-path event diet off (`SimConfig::coalesce_voids`
    /// and `SimConfig::elide_nic_pulls` both false) — the pre-diet
    /// engine, for the CI coalesce-differential (trace-diff) gate.
    /// Physics and observer streams are byte-identical either way.
    pub no_coalesce: bool,
    /// Within-cell partition count (`SimConfig::shards`); 1 = serial
    /// engine. Outputs are byte-identical at every value (the CI
    /// shard-differential gate diffs the traces).
    pub shards: u32,
    /// Worker threads for the sharded engine's window-prepare pass
    /// (`SimConfig::shard_threads`); never affects outputs.
    pub shard_threads: usize,
    /// Record windowed telemetry (`SimConfig::telemetry`, 1 ms windows)
    /// and write the deterministic `silo-telemetry-v1` JSONL to this
    /// path. Physics are unchanged (the simnet telemetry suite asserts
    /// byte-identity); only wall-clock and the exported file differ.
    pub telemetry: Option<String>,
    /// Also write the OpenMetrics text exposition of the telemetry
    /// series to this path. Implies telemetry recording.
    pub telemetry_openmetrics: Option<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            scale: 0.25,
            seed: 1,
            duration_ms: 100,
            runs: 3,
            occupancy: 0.9,
            threads: 0,
            profile: false,
            audit: false,
            trace: None,
            trace_perfetto: None,
            no_coalesce: false,
            shards: 1,
            shard_threads: 1,
            telemetry: None,
            telemetry_openmetrics: None,
        }
    }
}

impl Args {
    /// Parse `--key value` pairs from `std::env::args`; unknown keys
    /// panic with a usage hint.
    pub fn parse() -> Args {
        let mut a = Args::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].as_str();
            if key == "--profile" {
                a.profile = true;
                i += 1;
                continue;
            }
            if key == "--audit" {
                a.audit = true;
                i += 1;
                continue;
            }
            if key == "--no-coalesce" {
                a.no_coalesce = true;
                i += 1;
                continue;
            }
            let val = argv.get(i + 1).unwrap_or_else(|| {
                panic!("missing value for {key}");
            });
            match key {
                "--scale" => a.scale = val.parse().expect("--scale takes a float"),
                "--seed" => a.seed = val.parse().expect("--seed takes an integer"),
                "--duration-ms" => {
                    a.duration_ms = val.parse().expect("--duration-ms takes an integer")
                }
                "--runs" => a.runs = val.parse().expect("--runs takes an integer"),
                "--occupancy" => a.occupancy = val.parse().expect("--occupancy takes a float"),
                "--threads" => a.threads = val.parse().expect("--threads takes an integer"),
                "--trace" => a.trace = Some(val.clone()),
                "--trace-perfetto" => a.trace_perfetto = Some(val.clone()),
                "--shards" => a.shards = val.parse().expect("--shards takes an integer"),
                "--shard-threads" => {
                    a.shard_threads = val.parse().expect("--shard-threads takes an integer")
                }
                "--telemetry" => a.telemetry = Some(val.clone()),
                "--telemetry-openmetrics" => a.telemetry_openmetrics = Some(val.clone()),
                other => panic!(
                    "unknown flag {other}; known: --scale --seed --duration-ms --runs --occupancy --threads --profile --audit --no-coalesce --trace --trace-perfetto --shards --shard-threads --telemetry --telemetry-openmetrics"
                ),
            }
            i += 2;
        }
        a
    }

    /// Flight-recorder tracing requested by any flag?
    pub fn trace_requested(&self) -> bool {
        self.trace.is_some() || self.trace_perfetto.is_some()
    }

    /// Windowed telemetry requested by any flag?
    pub fn telemetry_requested(&self) -> bool {
        self.telemetry.is_some() || self.telemetry_openmetrics.is_some()
    }

    /// Threads to use for a sweep of `cells` cells (resolves the `0 =
    /// auto` default).
    pub fn effective_threads(&self, cells: usize) -> usize {
        if self.threads == 0 {
            crate::runner::auto_threads(cells)
        } else {
            self.threads.min(cells.max(1))
        }
    }
}
