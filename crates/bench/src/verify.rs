//! Shared harness for the queue-bound theorem check: build a tenant
//! population with the real placer, drive it with adversarial workloads
//! through the packet simulator, and compare every port's measured queue
//! high-water mark against its admission-time backlog bound.
//!
//! Used by the `verify_queue_bounds` binary (large-scale, human-readable)
//! and the tier-2 `queue_bounds` test (small-scale, CI audit job). Both
//! also thread the bounds into the engine's invariant-audit layer, which
//! checks them *online* at every enqueue rather than only against the
//! end-of-run high-water mark.

use rand::Rng;
use silo_base::{exponential, seeded_rng, Bytes, Dur, Rate, Time};
use silo_placement::{Guarantee, Placer, SiloPlacer, TenantRequest};
use silo_simnet::{
    AuditConfig, AuditReport, Metrics, Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode,
};
use silo_topology::{HostId, PortId, Topology};

/// The adversarial verification population: alternating class-A tenants
/// (synchronized OLDI bursts of 0.9·S messages) and class-B tenants
/// (backlogged 1 MB all-to-all shuffles), admitted by the real placer
/// until `occupancy` of the VM slots is used or admission keeps refusing.
/// Returns the placer (holding the admitted load state) and the specs.
pub fn build_verify_population(
    topo: &Topology,
    occupancy: f64,
    seed: u64,
) -> (SiloPlacer, Vec<TenantSpec>, usize) {
    let mut placer = SiloPlacer::new(topo.clone());
    let mut rng = seeded_rng(seed);
    let mut specs = Vec::new();
    let target = (topo.params().num_vm_slots() as f64 * occupancy) as usize;
    let mut used = 0usize;
    let mut rejects = 0;
    while used < target && rejects < 50 {
        let class_a = specs.len() % 2 == 0;
        let n = if class_a {
            16 + (rng.random_range(0..17usize))
        } else {
            8 + (rng.random_range(0..9usize))
        };
        let g = if class_a {
            Guarantee {
                b: Rate::from_bps(
                    (exponential(&mut rng, 1.0 / 0.25e9) as u64).clamp(50_000_000, 1_000_000_000),
                ),
                s: Bytes((exponential(&mut rng, 1.0 / 15_000.0) as u64).clamp(1_500, 60_000)),
                bmax: Rate::from_gbps(1),
                delay: Some(Dur::from_us(1000)),
            }
        } else {
            let b = Rate::from_bps(
                (exponential(&mut rng, 1.0 / 2e9) as u64).clamp(250_000_000, 5_000_000_000),
            );
            Guarantee {
                b,
                s: Bytes(1500),
                bmax: b,
                delay: None,
            }
        };
        let Ok(p) = placer.try_place(&TenantRequest::new(n, g)) else {
            rejects += 1;
            continue;
        };
        rejects = 0;
        used += n;
        let mut vm_hosts: Vec<HostId> = Vec::new();
        for &(h, k) in &p.hosts {
            for _ in 0..k {
                vm_hosts.push(h);
            }
        }
        let workload = if class_a {
            // Worst case: every burst fully synchronized, message = 0.9 S.
            let msg = Bytes((g.s.as_u64() * 9) / 10);
            let interval = Dur::from_secs_f64(
                (n - 1) as f64 * msg.bits() as f64 / (0.5 * g.b.as_bps() as f64),
            );
            TenantWorkload::OldiAllToOne {
                msg_mean: msg,
                interval,
            }
        } else {
            TenantWorkload::BulkAllToAll {
                msg: Bytes::from_mb(1),
            }
        };
        specs.push(TenantSpec {
            vm_hosts,
            b: g.b,
            s: g.s,
            bmax: g.bmax,
            prio: 0,
            delay: None,
            workload,
        });
    }
    (placer, specs, used)
}

/// Slack added on top of the fluid bound at each port: one batch window
/// of line-rate bunching. Paced-IO batching may delay packets by up to
/// `batch_window` and then release them back-to-back, which the fluid
/// curves don't model (the paper absorbs the same slack inside the ports'
/// queue capacity margin).
pub fn bound_slack(rate: Rate) -> u64 {
    rate.bytes_in(Dur::from_us(50)).as_u64()
}

/// The admission-time bound (+ slack) per switch port, in the shape the
/// audit layer consumes. Unreserved switch ports get the bare slack —
/// conformant paced traffic may bunch there but never accumulate.
pub fn audit_port_bounds(topo: &Topology, placer: &SiloPlacer) -> Vec<Option<u64>> {
    placer
        .backlog_bounds()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let info = topo.port(PortId(i as u32));
            if info.is_nic {
                None
            } else {
                Some(b.map(|b| b.as_u64()).unwrap_or(0) + bound_slack(info.rate))
            }
        })
        .collect()
}

/// One checked port's outcome.
pub struct VerifyRow {
    pub port: usize,
    pub up: bool,
    pub measured: u64,
    pub bound: u64,
    pub buffer: u64,
    pub peak_at: Time,
}

impl VerifyRow {
    pub fn ok(&self) -> bool {
        self.measured <= self.bound
    }
}

/// Full outcome of a verification run.
pub struct VerifyOutcome {
    pub metrics: Metrics,
    /// Per-loaded-port comparisons (ports with zero peak are skipped).
    pub rows: Vec<VerifyRow>,
    pub checked: usize,
    pub violations: usize,
    /// The online audit report (`audit: true` runs only).
    pub audit: Option<AuditReport>,
}

/// Run the verification simulation over an already-built population.
/// `batch_us` overrides the paced-IO window (the `SILO_BATCH_US` knob);
/// `audit` additionally threads the per-port bounds into the engine's
/// audit layer for online checking.
pub fn run_verify(
    topo: &Topology,
    placer: &SiloPlacer,
    specs: Vec<TenantSpec>,
    duration: Dur,
    seed: u64,
    batch_us: Option<u64>,
    audit: bool,
) -> VerifyOutcome {
    let mut cfg = SimConfig::new(TransportMode::Silo, duration, seed);
    if let Some(us) = batch_us {
        cfg.batch_window = Dur::from_us(us);
    }
    if audit {
        cfg.audit = Some(AuditConfig {
            port_bounds: audit_port_bounds(topo, placer),
            ..AuditConfig::default()
        });
    }
    let (m, simdbg) = Sim::new(topo.clone(), cfg, specs).run_keep();
    let peaks = simdbg.debug_port_peaks();
    let mut rows = Vec::new();
    let mut checked = 0;
    let mut violations = 0;
    for (i, (&measured, peak)) in m.port_max_queue.iter().zip(&peaks).enumerate() {
        let pid = PortId(i as u32);
        let info = topo.port(pid);
        if info.is_nic {
            continue; // NIC queues live in host memory under the pacer
        }
        if measured == 0 {
            continue;
        }
        let bound =
            placer.backlog_bound(pid).map(|b| b.as_u64()).unwrap_or(0) + bound_slack(info.rate);
        checked += 1;
        let row = VerifyRow {
            port: i,
            up: pid.is_up(),
            measured,
            bound,
            buffer: info.buffer.as_u64(),
            peak_at: peak.1,
        };
        if !row.ok() {
            violations += 1;
        }
        rows.push(row);
    }
    let audit_report = m.audit.clone();
    VerifyOutcome {
        metrics: m,
        rows,
        checked,
        violations,
        audit: audit_report,
    }
}
