//! Shared experiment plumbing for the per-figure binaries.
//!
//! Every binary accepts:
//!
//! * `--scale <f>`   — topology scale factor (1.0 = the paper's sizes);
//! * `--seed <n>`    — RNG seed;
//! * `--duration-ms <n>` — simulated time for packet-level runs;
//! * `--runs <n>`    — repetitions where the paper aggregates over runs;
//! * `--threads <n>` — worker threads for sweep cells (0 = one per core).
//!   Results are bit-identical at any thread count (see [`runner`]).
//!
//! Defaults are sized so the full suite completes in minutes on a laptop
//! while preserving oversubscription ratios and workload shapes; pass
//! `--scale 1` for the paper's full dimensions.

pub mod args;
pub mod corpus;
pub mod ns2;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod telemetryfile;
pub mod tracefile;
pub mod verify;

pub use args::Args;
pub use report::{fmt_dur_us, print_cdf, print_header, print_row};
pub use runner::{
    auto_threads, run_cells, run_cells_timed, run_cells_timed_spawned, BenchCell, BenchReport,
    Timed,
};
pub use scenario::{
    build_ns2_population, testbed_tenants, NsClass, NsTenant, PlacerKind, TestbedReq,
};
pub use telemetryfile::{
    openmetrics_lint, parse_telemetry, render_top, telemetry_divergence, TelemetryDivergence,
    TelemetryFile, TelemetryKind, TelemetryRow,
};
pub use tracefile::{
    check_perfetto, first_divergence, parse_jsonl, summarize, Divergence, Json, TraceFile, TraceRow,
};
pub use verify::{build_verify_population, run_verify, VerifyOutcome, VerifyRow};
