//! The committed explorer corpus: fault schedules the coverage-guided
//! search found interesting, promoted to golden scenarios.
//!
//! Each entry is a `silo-faultplan-v1` JSON file under
//! `crates/bench/corpus/explorer/`, embedded at compile time so the fault
//! suite and the tier-2 regression test replay them without a working
//! directory. Promotion workflow (see EXPERIMENTS.md):
//!
//! 1. `silo-explorer search --corpus-out /tmp/corpus ...`
//! 2. pick schedules whose signatures cover behavior the hand-written
//!    suite does not (check `report.txt`),
//! 3. `silo-explorer replay <file> --strict` — must exit 0,
//! 4. copy into `corpus/explorer/` with a descriptive name and add it to
//!    [`GOLDENS`].

use silo_simnet::FaultPlan;

/// `(label, embedded JSON)` of every committed schedule.
pub const GOLDENS: &[(&str, &str)] = &[
    // Sender-pacer stall with a port kill overlapping its window: the
    // only committed schedule that trips (attributed) conformance audits.
    (
        "corpus: stall + port kill",
        include_str!("../corpus/explorer/stall_port_down_overlap.json"),
    ),
    // A link kill plus three mutually-overlapping kill/restore windows
    // on one port — the overlapping-fault bookkeeping stress case.
    (
        "corpus: overlapping port kills",
        include_str!("../corpus/explorer/overlapping_port_kills.json"),
    ),
    // Five faults of four kinds at once: double tenant churn, a port
    // kill, a bystander-host stall and a slow drift from t≈0.
    (
        "corpus: drift+churn+stall mix",
        include_str!("../corpus/explorer/drift_churn_stall_mix.json"),
    ),
    // Bulk-tenant churn where the second strike is a zero-length window
    // (down and back at one instant).
    (
        "corpus: zero-length strike",
        include_str!("../corpus/explorer/zero_length_strike_churn.json"),
    ),
];

/// Parse every committed schedule. Panics on a malformed file — the
/// corpus is compiled in, so that is a build artifact error, not input.
pub fn explorer_goldens() -> Vec<(&'static str, FaultPlan)> {
    GOLDENS
        .iter()
        .map(|(label, text)| {
            (
                *label,
                FaultPlan::from_json(text)
                    .unwrap_or_else(|e| panic!("corpus entry '{label}' is malformed: {e}")),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_golden_parses_and_round_trips() {
        for (label, text) in GOLDENS {
            let plan = FaultPlan::from_json(text).expect(label);
            assert!(!plan.events.is_empty(), "{label}: empty plan is not golden");
            assert_eq!(
                plan.to_json(),
                **text,
                "{label}: committed file is not in canonical dump form"
            );
        }
    }
}
