//! Microbenchmarks for the performance-sensitive substrates: placement
//! admission at datacenter scale (§5's 1.15 s budget), the pacer datapath,
//! network-calculus curve operations, max-min waterfilling, and the
//! discrete-event queue (timer wheel vs. reference binary heap).
//!
//! Self-contained harness (`harness = false`): each benchmark reports the
//! median ns/iteration over several samples. `--quick` cuts sample counts
//! for CI. The event-queue benches double as a machine-independent
//! regression gate: the timer wheel must not be slower than the reference
//! heap on the simulator's event pattern (enforced with `--enforce`).

use silo_base::{seeded_rng, Bytes, Dur, EventQueue, QueueBackend, Rate, ShardedEventQueue, Time};
use silo_flowsim::{waterfill, Allocator};
use silo_netcalc::{backlog_bound, Curve, ServiceCurve};
use silo_pacer::{Batch, BucketChain, PacedBatcher, TokenBucket};
use silo_placement::{Guarantee, Placer, SiloPlacer, TenantRequest};
use silo_topology::{HostId, Topology, TreeParams};
use std::time::Instant;

struct Harness {
    quick: bool,
    enforce: bool,
    results: Vec<(String, f64)>,
}

impl Harness {
    /// Time `f` and record the median ns per iteration.
    fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> f64 {
        let samples = if self.quick { 3 } else { 10 };
        // Calibrate the per-sample iteration count to ~20 ms (2 ms quick).
        let budget_ns = if self.quick { 2e6 } else { 2e7 };
        let t0 = Instant::now();
        f();
        let once = t0.elapsed().as_nanos().max(1) as f64;
        let iters = ((budget_ns / once) as usize).clamp(1, 1_000_000);
        let mut meds: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            meds.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        meds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = meds[meds.len() / 2];
        println!("{name:<44} {med:>12.1} ns/iter  ({iters} iters x {samples} samples)");
        self.results.push((name.to_string(), med));
        med
    }
}

fn placement_topo(hosts_scale: usize) -> Topology {
    Topology::build(TreeParams {
        pods: hosts_scale,
        racks_per_pod: 25,
        servers_per_rack: 40,
        vm_slots_per_server: 8,
        host_link: Rate::from_gbps(10),
        tor_oversub: 5.0,
        agg_oversub: 5.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn bench_placement(h: &mut Harness) {
    // 25 racks x 40 servers per pod; quick mode shrinks the datacenter so
    // CI finishes in seconds.
    let topo = placement_topo(if h.quick { 2 } else { 10 });
    let mut placer = SiloPlacer::new(topo);
    // Pre-fill to ~50% with tenant shapes admission accepts (large
    // class-A tenants are *correctly* rejected by C1, but every rejection
    // scans the whole datacenter — that cost belongs in the measured
    // loop, not the setup).
    let mut rng = seeded_rng(1);
    let mut filled = 0usize;
    let total = placer.topology().params().num_vm_slots();
    let mut toggle = false;
    while filled < total / 2 {
        toggle = !toggle;
        let (n, g) = if toggle {
            (
                (silo_base::exponential(&mut rng, 1.0 / 12.0) as usize).clamp(2, 24),
                Guarantee::class_a(),
            )
        } else {
            (
                (silo_base::exponential(&mut rng, 1.0 / 30.0) as usize).clamp(2, 60),
                Guarantee::class_b(),
            )
        };
        if placer.try_place(&TenantRequest::new(n, g)).is_ok() {
            filled += n;
        }
    }
    h.bench("placement/admit_49vm_tenant", || {
        let req = TenantRequest::new(49, Guarantee::class_a());
        if let Ok(p) = placer.try_place(&req) {
            placer.remove(p.tenant);
        }
    });
}

fn bench_pacer(h: &mut Harness) {
    let mut chain = BucketChain::new(vec![
        TokenBucket::new(Rate::from_gbps(1), Bytes::from_kb(15)),
        TokenBucket::new(Rate::from_gbps(10), Bytes(1500)),
    ]);
    let mut now = Time::ZERO;
    h.bench("pacer/stamp_packet", || {
        now = chain.stamp(now, Bytes(1500));
    });

    h.bench("pacer/batch_assembly_50us", || {
        let mut batcher: PacedBatcher<u32> =
            PacedBatcher::new(Rate::from_gbps(10), Dur::from_us(50), Bytes(1500));
        // 2 Gbps pacing: 8 data packets + voids per 50 us batch.
        for i in 0..8u32 {
            batcher.enqueue(Time::from_us(6 * i as u64), Bytes(1500), i);
        }
        batcher.next_batch(Time::ZERO);
    });
}

fn bench_netcalc(h: &mut Harness) {
    let a = Curve::dual_slope(
        Rate::from_gbps(1),
        Bytes::from_kb(100),
        Rate::from_gbps(10),
        Bytes(1500),
    );
    let svc = ServiceCurve::constant_rate(Rate::from_gbps(10));
    h.bench("netcalc/add_dual_slope", || {
        std::hint::black_box(a.add(std::hint::black_box(&a)));
    });
    let agg = a.scale(6.0);
    h.bench("netcalc/backlog_bound", || {
        std::hint::black_box(backlog_bound(std::hint::black_box(&agg), &svc));
    });
}

fn bench_waterfill(h: &mut Harness) {
    let topo = Topology::build(TreeParams::ns2_paper());
    let mut rng = seeded_rng(7);
    let flows: Vec<silo_flowsim::AllocFlow> = (0..1000)
        .map(|_| {
            let s = HostId((silo_base::exponential(&mut rng, 1.0) * 100.0) as u32 % 400);
            let d = HostId((silo_base::exponential(&mut rng, 1.0) * 173.0) as u32 % 400);
            silo_flowsim::AllocFlow {
                path: topo.path_ports(s, d),
                src_hose: Rate::from_gbps(1),
                out_deg: 1,
                dst_hose: Rate::from_gbps(1),
                in_deg: 1,
            }
        })
        .collect();
    h.bench("flowsim/waterfill_1000_flows", || {
        std::hint::black_box(waterfill(&topo, std::hint::black_box(&flows)));
    });
    let _ = Allocator::FairShare;
}

/// The simulator's event pattern in miniature: a rolling window of
/// mixed-horizon timers (packet tx ~us, RTOs ~ms), pushed and popped in
/// monotone time order. Returns ns/op for the given queue.
fn churn_queue(q: &mut EventQueue<u64>, ops: usize) -> f64 {
    let mut rng = seeded_rng(99);
    use rand::Rng;
    let mut now = 0u64;
    // Warm the queue to a realistic standing depth.
    for i in 0..4096u64 {
        let dt = if i % 7 == 0 { 1_000_000_000 } else { 1_200_000 };
        q.push(Time(now + rng.random_range(0..dt)), i);
    }
    let t0 = Instant::now();
    for i in 0..ops {
        let (t, _) = q.pop().expect("queue stays warm");
        now = t.as_ps();
        let dt = if i % 7 == 0 { 1_000_000_000 } else { 1_200_000 };
        q.push(Time(now + rng.random_range(0..dt)), i as u64);
    }
    t0.elapsed().as_nanos() as f64 / ops as f64
}

fn bench_eventq(h: &mut Harness) -> (f64, f64) {
    let ops = if h.quick { 200_000 } else { 2_000_000 };
    let mut wheel = EventQueue::new();
    let wheel_ns = churn_queue(&mut wheel, ops);
    println!(
        "{:<44} {wheel_ns:>12.1} ns/op   ({ops} ops)",
        "eventq/wheel_churn_4096"
    );
    h.results.push(("eventq/wheel_churn_4096".into(), wheel_ns));
    let mut heap = EventQueue::reference_heap();
    let heap_ns = churn_queue(&mut heap, ops);
    println!(
        "{:<44} {heap_ns:>12.1} ns/op   ({ops} ops)",
        "eventq/heap_churn_4096"
    );
    h.results.push(("eventq/heap_churn_4096".into(), heap_ns));
    (wheel_ns, heap_ns)
}

/// The simulator's RTO pattern in miniature: 64 connections each re-arm a
/// 10 ms timer every segment (~1.2 µs), so a timer is superseded ~8000
/// times before it would fire. `cancel = false` models the tombstone
/// scheme — dead timers stay buried until they surface and are skipped —
/// and the standing population grows to the full horizon (~8 k dead
/// entries); `cancel = true` removes each superseded timer at re-arm time
/// and the queue holds only the 64 live ones. Returns ns per re-arm.
fn rearm_churn(q: &mut EventQueue<u64>, ops: usize, cancel: bool) -> f64 {
    const CONNS: usize = 64;
    const REARM_PS: u64 = 1_200_000; // one MTU tx at 10 GbE
    const RTO_PS: u64 = 10_000_000_000; // 10 ms min RTO
    let mut keys = [None; CONNS];
    let mut now = 0u64;
    let t0 = Instant::now();
    for i in 0..ops {
        let c = i % CONNS;
        now += REARM_PS;
        if cancel {
            if let Some(k) = keys[c].take() {
                q.cancel(k);
            }
            keys[c] = Some(q.push_cancelable(Time(now + RTO_PS), c as u64));
        } else {
            q.push(Time(now + RTO_PS), c as u64);
        }
        // Drain everything due (tombstones dominate in the no-cancel run).
        while q.peek_time().is_some_and(|t| t.as_ps() <= now) {
            q.pop();
        }
    }
    t0.elapsed().as_nanos() as f64 / ops as f64
}

/// Silo's void-dominated NIC drain in miniature: two MTU packets per
/// 50 µs window (~480 Mbps of a 10 GbE link) leave ~95% of each batch
/// void, so the per-chunk batcher materializes ~40 MTU void frames per
/// window where the coalescing one emits a single run per gap. The timed
/// loop includes the consumer walk over the emitted frames — the
/// per-frame engine touch is exactly what coalescing dies to avoid.
/// Returns (ns per window, total frames emitted).
fn void_drain(windows: usize, coalesce: bool) -> (f64, u64) {
    let mut b: PacedBatcher<u32> =
        PacedBatcher::new(Rate::from_gbps(10), Dur::from_us(50), Bytes(1500));
    b.coalesce_voids(coalesce);
    for i in 0..windows as u64 {
        b.enqueue(Time::from_us(50 * i + 11), Bytes(1500), i as u32);
        b.enqueue(Time::from_us(50 * i + 37), Bytes(1500), i as u32);
    }
    let mut out = Batch::empty();
    let mut now = Time::ZERO;
    let mut frames = 0u64;
    let t0 = Instant::now();
    while b.pending() > 0 {
        b.next_batch_into(now, &mut out);
        for f in &out.frames {
            frames += 1;
            std::hint::black_box((f.start, f.size));
        }
        now = if out.is_empty() {
            b.next_stamp().expect("pending").max(now)
        } else {
            out.done_at
        };
    }
    (t0.elapsed().as_nanos() as f64 / windows as f64, frames)
}

fn bench_void_coalesce(h: &mut Harness) -> (f64, f64) {
    let windows = if h.quick { 20_000 } else { 200_000 };
    let (plain_ns, plain_frames) = void_drain(windows, false);
    println!(
        "{:<44} {plain_ns:>12.1} ns/win   ({windows} windows, {plain_frames} frames)",
        "pacer/void_drain_per_chunk"
    );
    h.results
        .push(("pacer/void_drain_per_chunk".into(), plain_ns));
    let (co_ns, co_frames) = void_drain(windows, true);
    println!(
        "{:<44} {co_ns:>12.1} ns/win   ({windows} windows, {co_frames} frames)",
        "pacer/void_drain_coalesced"
    );
    h.results.push(("pacer/void_drain_coalesced".into(), co_ns));
    assert!(
        plain_frames > 2 * co_frames,
        "coalescing must shrink the frame population ({plain_frames} vs {co_frames})"
    );
    (plain_ns, co_ns)
}

fn bench_timer_cancel(h: &mut Harness) -> (f64, f64) {
    let ops = if h.quick { 200_000 } else { 2_000_000 };
    let mut tomb = EventQueue::new();
    let tomb_ns = rearm_churn(&mut tomb, ops, false);
    println!(
        "{:<44} {tomb_ns:>12.1} ns/op   ({ops} ops, peak {} entries)",
        "eventq/rearm_tombstone",
        tomb.peak_len()
    );
    h.results.push(("eventq/rearm_tombstone".into(), tomb_ns));
    let mut canc = EventQueue::new();
    let canc_ns = rearm_churn(&mut canc, ops, true);
    println!(
        "{:<44} {canc_ns:>12.1} ns/op   ({ops} ops, peak {} entries)",
        "eventq/rearm_cancel",
        canc.peak_len()
    );
    h.results.push(("eventq/rearm_cancel".into(), canc_ns));
    (tomb_ns, canc_ns)
}

/// The sharded engine's cut-packet flow in miniature: a 4-partition
/// windowed merge under the simulator's rolling churn, with one push in
/// eight crossing a partition cut through the mailbox path (mailed at a
/// barrier, re-queued with its original seq). Returns ns per op.
fn sharded_churn(ops: usize) -> (f64, u64, u64) {
    use rand::Rng;
    let mut q: ShardedEventQueue<u64> =
        ShardedEventQueue::new(4, QueueBackend::Wheel, Dur::from_ns(500), 1);
    let mut rng = seeded_rng(99);
    let mut now = 0u64;
    for i in 0..4096u64 {
        let shard = (i % 4) as usize;
        q.push(shard, Time(now + rng.random_range(1..1_200_000)), i);
    }
    let t0 = Instant::now();
    for i in 0..ops {
        let (t, _) = q.pop().expect("queue stays warm");
        now = t.as_ps();
        let shard = i % 4;
        let t_new = Time(now + 1_200_000 + rng.random_range(0..1_200_000));
        if i % 8 == 0 {
            // A cut crossing: owned by the neighbour partition.
            q.mail((shard + 1) % 4, t_new, i as u64);
        } else {
            q.push(shard, t_new, i as u64);
        }
    }
    let ns = t0.elapsed().as_nanos() as f64 / ops as f64;
    (ns, q.mailed(), q.barriers())
}

/// The naive alternative the mailbox design replaces: every partition
/// shares one queue behind a global lock, every operation takes it.
fn locked_churn(ops: usize) -> f64 {
    use rand::Rng;
    let q = std::sync::Mutex::new(EventQueue::new());
    let mut rng = seeded_rng(99);
    let mut now = 0u64;
    for i in 0..4096u64 {
        q.lock()
            .unwrap()
            .push(Time(now + rng.random_range(1..1_200_000)), i);
    }
    let t0 = Instant::now();
    for i in 0..ops {
        let (t, _) = q.lock().unwrap().pop().expect("queue stays warm");
        now = t.as_ps();
        let t_new = Time(now + 1_200_000 + rng.random_range(0..1_200_000));
        q.lock().unwrap().push(t_new, i as u64);
    }
    t0.elapsed().as_nanos() as f64 / ops as f64
}

fn bench_partition_merge(h: &mut Harness) -> (f64, f64) {
    let ops = if h.quick { 200_000 } else { 2_000_000 };
    let (shard_ns, mailed, barriers) = sharded_churn(ops);
    println!(
        "{:<44} {shard_ns:>12.1} ns/op   ({ops} ops, {mailed} mailed, {barriers} barriers)",
        "eventq/partition_merge_4x"
    );
    h.results
        .push(("eventq/partition_merge_4x".into(), shard_ns));
    assert!(
        mailed > 0 && barriers > 0,
        "the churn must exercise the mailbox and barrier machinery"
    );
    let lock_ns = locked_churn(ops);
    println!(
        "{:<44} {lock_ns:>12.1} ns/op   ({ops} ops)",
        "eventq/global_lock_queue"
    );
    h.results.push(("eventq/global_lock_queue".into(), lock_ns));
    (shard_ns, lock_ns)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Cargo's bench runner passes --bench through; ignore it.
    let quick = argv.iter().any(|a| a == "--quick");
    let enforce = argv.iter().any(|a| a == "--enforce");
    let mut h = Harness {
        quick,
        enforce,
        results: Vec::new(),
    };
    println!("== silo microbench (quick={quick}) ==");
    bench_placement(&mut h);
    bench_pacer(&mut h);
    bench_netcalc(&mut h);
    bench_waterfill(&mut h);
    let (wheel_ns, heap_ns) = bench_eventq(&mut h);
    let (tomb_ns, canc_ns) = bench_timer_cancel(&mut h);
    let (plain_ns, co_ns) = bench_void_coalesce(&mut h);
    let (shard_ns, lock_ns) = bench_partition_merge(&mut h);
    // Machine-independent regression gates (ratios, so CI hardware
    // variance doesn't matter):
    // 1. The timer wheel must stay within 2x of the reference heap on the
    //    simulator's event pattern (it is expected to be *faster*; 2x
    //    headroom absorbs CI noise).
    let ratio = wheel_ns / heap_ns;
    println!("eventq wheel/heap ratio: {ratio:.2} (gate: < 2.0)");
    // 2. Cancellation must beat the tombstone scheme by >= 1.3x on the
    //    RTO re-arm pattern — the win the simulator's cancel_timers
    //    default is predicated on.
    let cancel_gain = tomb_ns / canc_ns;
    println!("eventq tombstone/cancel re-arm gain: {cancel_gain:.2}x (gate: >= 1.3)");
    // 3. Coalesced void emission must beat per-chunk emission by >= 2x on
    //    a void-dominated Silo drain (emission + consumer walk) — the win
    //    the simnet `coalesce_voids` default is predicated on.
    let void_gain = plain_ns / co_ns;
    println!("pacer per-chunk/coalesced void-drain gain: {void_gain:.2}x (gate: >= 2.0)");
    // 4. The 4-way windowed merge (mailboxes + K-way head scan) must stay
    //    within 3x of a global-lock queue per op — the per-event price of
    //    lock-free partitions between barriers. If the merge overhead blows
    //    past that, the sharded engine's premise is dead.
    let merge_ratio = shard_ns / lock_ns;
    println!("eventq partition-merge/global-lock ratio: {merge_ratio:.2} (gate: < 3.0)");
    if h.enforce {
        if ratio >= 2.0 {
            eprintln!("REGRESSION: timer wheel {ratio:.2}x slower than reference heap");
            std::process::exit(1);
        }
        if cancel_gain < 1.3 {
            eprintln!(
                "REGRESSION: timer cancellation only {cancel_gain:.2}x over tombstones (need 1.3x)"
            );
            std::process::exit(1);
        }
        if void_gain < 2.0 {
            eprintln!(
                "REGRESSION: void coalescing only {void_gain:.2}x over per-chunk emission (need 2x)"
            );
            std::process::exit(1);
        }
        if merge_ratio >= 3.0 {
            eprintln!(
                "REGRESSION: partition merge {merge_ratio:.2}x over a global-lock queue (need < 3x)"
            );
            std::process::exit(1);
        }
    }
}
