//! Criterion microbenchmarks for the performance-sensitive substrates:
//! placement admission at datacenter scale (§5's 1.15 s budget), the
//! pacer datapath, network-calculus curve operations, and max-min
//! waterfilling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use silo_base::{seeded_rng, Bytes, Dur, Rate, Time};
use silo_flowsim::{waterfill, Allocator};
use silo_netcalc::{backlog_bound, Curve, ServiceCurve};
use silo_pacer::{BucketChain, PacedBatcher, TokenBucket};
use silo_placement::{Guarantee, Placer, SiloPlacer, TenantRequest};
use silo_topology::{HostId, Topology, TreeParams};

fn placement_topo(hosts_scale: usize) -> Topology {
    Topology::build(TreeParams {
        pods: hosts_scale,
        racks_per_pod: 25,
        servers_per_rack: 40,
        vm_slots_per_server: 8,
        host_link: Rate::from_gbps(10),
        tor_oversub: 5.0,
        agg_oversub: 5.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn bench_placement(c: &mut Criterion) {
    // 10 pods x 25 racks x 40 servers = 10 K hosts (a tenth of the
    // paper's microbenchmark, to keep bench wall time sane).
    let topo = placement_topo(10);
    let mut placer = SiloPlacer::new(topo);
    // Pre-fill to ~50% with tenant shapes admission accepts (large
    // class-A tenants are *correctly* rejected by C1, but every rejection
    // scans the whole datacenter — that cost belongs in the measured
    // loop, not the setup).
    let mut rng = seeded_rng(1);
    let mut filled = 0usize;
    let total = placer.topology().params().num_vm_slots();
    let mut toggle = false;
    while filled < total / 2 {
        toggle = !toggle;
        let (n, g) = if toggle {
            (
                (silo_base::exponential(&mut rng, 1.0 / 12.0) as usize).clamp(2, 24),
                Guarantee::class_a(),
            )
        } else {
            (
                (silo_base::exponential(&mut rng, 1.0 / 30.0) as usize).clamp(2, 60),
                Guarantee::class_b(),
            )
        };
        if placer.try_place(&TenantRequest::new(n, g)).is_ok() {
            filled += n;
        }
    }
    c.bench_function("placement/admit_49vm_tenant_10k_hosts", |b| {
        b.iter_batched(
            || TenantRequest::new(49, Guarantee::class_a()),
            |req| {
                if let Ok(p) = placer.try_place(&req) {
                    placer.remove(p.tenant);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pacer(c: &mut Criterion) {
    c.bench_function("pacer/stamp_packet", |b| {
        let mut chain = BucketChain::new(vec![
            TokenBucket::new(Rate::from_gbps(1), Bytes::from_kb(15)),
            TokenBucket::new(Rate::from_gbps(10), Bytes(1500)),
        ]);
        let mut now = Time::ZERO;
        b.iter(|| {
            let t = chain.stamp(now, Bytes(1500));
            now = t;
            t
        })
    });

    c.bench_function("pacer/batch_assembly_50us", |b| {
        b.iter_batched(
            || {
                let mut batcher: PacedBatcher<u32> =
                    PacedBatcher::new(Rate::from_gbps(10), Dur::from_us(50), Bytes(1500));
                // 2 Gbps pacing: 8 data packets + voids per 50 us batch.
                for i in 0..8u32 {
                    batcher.enqueue(Time::from_us(6 * i as u64), Bytes(1500), i);
                }
                batcher
            },
            |mut batcher| batcher.next_batch(Time::ZERO),
            BatchSize::SmallInput,
        )
    });
}

fn bench_netcalc(c: &mut Criterion) {
    let a = Curve::dual_slope(
        Rate::from_gbps(1),
        Bytes::from_kb(100),
        Rate::from_gbps(10),
        Bytes(1500),
    );
    let svc = ServiceCurve::constant_rate(Rate::from_gbps(10));
    c.bench_function("netcalc/add_dual_slope", |b| {
        b.iter(|| a.add(std::hint::black_box(&a)))
    });
    c.bench_function("netcalc/backlog_bound", |b| {
        let agg = a.scale(6.0);
        b.iter(|| backlog_bound(std::hint::black_box(&agg), &svc))
    });
}

fn bench_waterfill(c: &mut Criterion) {
    let topo = Topology::build(TreeParams::ns2_paper());
    let mut rng = seeded_rng(7);
    let flows: Vec<silo_flowsim::AllocFlow> = (0..1000)
        .map(|_| {
            let s = HostId((silo_base::exponential(&mut rng, 1.0) * 100.0) as u32 % 400);
            let d = HostId((silo_base::exponential(&mut rng, 1.0) * 173.0) as u32 % 400);
            silo_flowsim::AllocFlow {
                path: topo.path_ports(s, d),
                src_hose: Rate::from_gbps(1),
                out_deg: 1,
                dst_hose: Rate::from_gbps(1),
                in_deg: 1,
            }
        })
        .collect();
    c.bench_function("flowsim/waterfill_1000_flows", |b| {
        b.iter(|| waterfill(&topo, std::hint::black_box(&flows)))
    });
    let _ = Allocator::FairShare;
}

criterion_group! {
    name = benches;
    // Plots disabled (headless boxes lack gnuplot) and a small sample
    // count: the placement bench's iterations are seconds-scale worst-case
    // datacenter scans, where 10 samples already give stable estimates.
    config = Criterion::default().without_plots().sample_size(10);
    targets = bench_placement, bench_pacer, bench_netcalc, bench_waterfill
}
criterion_main!(benches);
