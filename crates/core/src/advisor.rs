//! Guarantee sizing: from a workload profile to a `{B, S, d, Bmax}`
//! guarantee.
//!
//! The paper assumes tenants arrive knowing their guarantees and points
//! at Cicada \[43\] for inferring bandwidth automatically (§4.1). This
//! module closes that loop for the repository: given a coarse profile of
//! an application's messaging behavior, recommend a guarantee that makes
//! its target message latency *provable* via §4.1's bound — using the
//! burst/bandwidth trade-off the paper quantifies in Table 1.

use crate::Guarantee;
use silo_base::{Bytes, Dur, Rate};

/// What the tenant knows about one VM's traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Typical message size the latency target applies to.
    pub msg_size: Bytes,
    /// Mean messages per second emitted by one VM.
    pub msg_rate: f64,
    /// Largest simultaneous fan-in the application creates (1 for
    /// pairwise traffic, N−1 for partition/aggregate).
    pub fan_in: usize,
    /// Desired end-to-end latency for a `msg_size` message.
    pub target_latency: Dur,
}

/// Why no guarantee can be recommended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvisorError {
    /// The target is below the pure transmission time at the fastest
    /// supported burst rate — no network guarantee can achieve it.
    TargetBelowTransmission,
}

/// Table 1's operating point: guaranteeing ~1.8× the average bandwidth
/// with a burst allowance of ~7 messages leaves ≈0.1 % of Poisson
/// messages late; we round the burst up and keep the bandwidth multiplier.
const BANDWIDTH_HEADROOM: f64 = 1.8;
const BURST_MESSAGES: u64 = 7;

/// Recommend a guarantee for the profile, given the burst rates the
/// provider offers (typically 1 Gbps or the line rate).
///
/// The recommendation satisfies, by construction:
/// `guarantee.message_latency_bound(msg_size) ≤ target_latency`, while
/// leaving the largest possible share of the target as packet-delay
/// budget `d` (slack the placement manager can spend on queueing).
pub fn recommend(profile: &WorkloadProfile, bmax: Rate) -> Result<Guarantee, AdvisorError> {
    assert!(profile.msg_rate > 0.0 && profile.fan_in >= 1);
    let tx = bmax.tx_time(profile.msg_size);
    if tx >= profile.target_latency {
        return Err(AdvisorError::TargetBelowTransmission);
    }
    // Average offered bandwidth; the hose must also absorb the fan-in
    // (all-to-one senders share the receiver's hose, §4.1).
    let avg_bps = profile.msg_size.bits() as f64 * profile.msg_rate * profile.fan_in as f64;
    let b = Rate::from_bps((avg_bps * BANDWIDTH_HEADROOM).ceil().max(1e6) as u64);
    // Burst: 7 messages (Table 1), but at least one MTU.
    let s = Bytes((profile.msg_size.as_u64() * BURST_MESSAGES).max(1500));
    // The whole remaining budget becomes the delay guarantee.
    let d = profile.target_latency - tx;
    Ok(Guarantee {
        b,
        s,
        bmax,
        delay: Some(d),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oldi() -> WorkloadProfile {
        WorkloadProfile {
            msg_size: Bytes::from_kb(15),
            msg_rate: 100.0,
            fan_in: 40,
            target_latency: Dur::from_ms(2),
        }
    }

    #[test]
    fn recommendation_proves_the_target() {
        let g = recommend(&oldi(), Rate::from_gbps(1)).unwrap();
        let bound = g.message_latency_bound(Bytes::from_kb(15)).unwrap();
        assert!(bound <= Dur::from_ms(2), "bound {bound}");
    }

    #[test]
    fn burst_covers_seven_messages() {
        let g = recommend(&oldi(), Rate::from_gbps(1)).unwrap();
        assert_eq!(g.s, Bytes::from_kb(105));
    }

    #[test]
    fn bandwidth_covers_fan_in_with_headroom() {
        let g = recommend(&oldi(), Rate::from_gbps(1)).unwrap();
        // 15 KB x 100/s x 40 = 480 Mbps average -> 864 Mbps guaranteed.
        let expect = 15_000.0 * 8.0 * 100.0 * 40.0 * 1.8;
        assert!((g.b.as_bps() as f64 - expect).abs() / expect < 0.01);
    }

    #[test]
    fn impossible_target_is_refused() {
        let mut p = oldi();
        p.target_latency = Dur::from_us(50); // 15 KB at 1 G is 120 us
        assert_eq!(
            recommend(&p, Rate::from_gbps(1)),
            Err(AdvisorError::TargetBelowTransmission)
        );
    }

    #[test]
    fn faster_burst_rate_buys_delay_budget() {
        let g1 = recommend(&oldi(), Rate::from_gbps(1)).unwrap();
        let g10 = recommend(&oldi(), Rate::from_gbps(10)).unwrap();
        assert!(g10.delay.unwrap() > g1.delay.unwrap());
    }

    #[test]
    fn tiny_messages_get_floor_values() {
        let p = WorkloadProfile {
            msg_size: Bytes(100),
            msg_rate: 1.0,
            fan_in: 1,
            target_latency: Dur::from_ms(1),
        };
        let g = recommend(&p, Rate::from_gbps(1)).unwrap();
        assert!(g.s >= Bytes(1500));
        assert!(g.b >= Rate::from_mbps(1));
    }
}
