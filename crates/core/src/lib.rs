//! # Silo — predictable message latency for multi-tenant datacenters
//!
//! This crate is the system facade of the Silo reproduction (SIGCOMM
//! 2015): the piece a cloud controller would embed. It couples the two
//! runtime components the paper describes —
//!
//! 1. the **VM placement manager** (`silo-placement`), which admits
//!    tenants and places their VMs so that every switch queue stays within
//!    its deterministic bound, and
//! 2. the **hypervisor pacer** (`silo-pacer`), which enforces each VM's
//!    `{B, S, Bmax}` on the wire at sub-microsecond granularity —
//!
//! and exposes the tenant-facing arithmetic: given a guarantee, what is
//! the worst-case latency of an `M`-byte message (§4.1)?
//!
//! ```
//! use silo_core::{SiloController, TenantRequest, Guarantee};
//! use silo_topology::{Topology, TreeParams};
//! use silo_base::{Bytes, Dur, Rate};
//!
//! let topo = Topology::build(TreeParams::testbed());
//! let mut silo = SiloController::new(topo);
//!
//! // A latency-sensitive tenant: 6 VMs, 210 Mbps each, 1.5 KB bursts at
//! // 1 Gbps, 1 ms NIC-to-NIC delay (Table 2's "Req 1").
//! let req = TenantRequest::new(6, Guarantee {
//!     b: Rate::from_mbps(210),
//!     s: Bytes(1500),
//!     bmax: Rate::from_gbps(1),
//!     delay: Some(Dur::from_ms(1)),
//! });
//! let tenant = silo.admit(&req).expect("testbed has room");
//!
//! // The tenant can now bound any message's latency itself:
//! let bound = silo.message_latency_bound(tenant.id, Bytes(1024)).unwrap();
//! assert!(bound < Dur::from_ms(2));
//!
//! // And every VM got a concrete pacer configuration.
//! assert_eq!(tenant.pacers.len(), 6);
//! ```

pub mod advisor;

use silo_base::{Bytes, Dur, Rate};
use silo_pacer::HoseAllocator;
use silo_topology::{HostId, Level, Topology};

pub use advisor::{recommend, AdvisorError, WorkloadProfile};
pub use silo_placement::{Guarantee, Placement, Placer, RejectReason, TenantId, TenantRequest};

/// The pacer settings Silo pushes to one VM's hypervisor on admission —
/// the three bucket levels of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacerConfig {
    pub vm: usize,
    pub host: HostId,
    /// `{B, S}` bucket.
    pub rate: Rate,
    pub burst: Bytes,
    /// `Bmax` cap bucket (capacity of one MTU).
    pub burst_rate: Rate,
    pub mtu: Bytes,
}

/// An admitted tenant: where its VMs landed and how its pacers are set.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmittedTenant {
    pub id: TenantId,
    pub placement: Placement,
    pub guarantee: Guarantee,
    pub pacers: Vec<PacerConfig>,
}

/// The Silo control plane: admission, placement, pacer configuration and
/// latency arithmetic, over one datacenter topology.
pub struct SiloController {
    placer: silo_placement::SiloPlacer,
    tenants: std::collections::HashMap<TenantId, AdmittedTenant>,
    mtu: Bytes,
}

impl SiloController {
    pub fn new(topo: Topology) -> SiloController {
        SiloController {
            placer: silo_placement::SiloPlacer::new(topo),
            tenants: std::collections::HashMap::new(),
            mtu: Bytes(1500),
        }
    }

    pub fn topology(&self) -> &Topology {
        self.placer.topology()
    }

    /// Admit a tenant: place its VMs under constraints C1/C2 and derive
    /// the per-VM pacer configuration.
    pub fn admit(&mut self, req: &TenantRequest) -> Result<AdmittedTenant, RejectReason> {
        let placement = self.placer.try_place(req)?;
        let mut pacers = Vec::with_capacity(req.vms);
        let mut vm = 0usize;
        for &(host, k) in &placement.hosts {
            for _ in 0..k {
                pacers.push(PacerConfig {
                    vm,
                    host,
                    rate: req.guarantee.b,
                    burst: req.guarantee.s,
                    burst_rate: req.guarantee.bmax,
                    mtu: self.mtu,
                });
                vm += 1;
            }
        }
        let admitted = AdmittedTenant {
            id: placement.tenant,
            placement,
            guarantee: req.guarantee,
            pacers,
        };
        self.tenants.insert(admitted.id, admitted.clone());
        Ok(admitted)
    }

    /// Release a tenant's VMs and reservations.
    pub fn evict(&mut self, id: TenantId) -> bool {
        self.tenants.remove(&id);
        self.placer.remove(id)
    }

    pub fn tenant(&self, id: TenantId) -> Option<&AdmittedTenant> {
        self.tenants.get(&id)
    }

    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    pub fn used_slots(&self) -> usize {
        self.placer.used_slots()
    }

    pub fn occupancy(&self) -> f64 {
        self.used_slots() as f64 / self.topology().params().num_vm_slots() as f64
    }

    /// §4.1: the worst-case latency of an `M`-byte message between two of
    /// the tenant's VMs (burst available). `None` for unknown tenants or
    /// bandwidth-only guarantees.
    pub fn message_latency_bound(&self, id: TenantId, msg: Bytes) -> Option<Dur> {
        self.tenants.get(&id)?.guarantee.message_latency_bound(msg)
    }

    /// The hose-model pairwise rates the pacers converge to for a given
    /// set of active VM pairs of one tenant (what the EyeQ-style
    /// coordination computes at runtime).
    pub fn hose_rates(
        &self,
        id: TenantId,
        active: &[(u32, u32)],
    ) -> Option<std::collections::HashMap<(u32, u32), Rate>> {
        let t = self.tenants.get(&id)?;
        Some(HoseAllocator::new(t.guarantee.b).allocate(active))
    }

    /// The span level the tenant was placed at (drives its worst-case
    /// path delay).
    pub fn span(&self, id: TenantId) -> Option<Level> {
        self.tenants.get(&id).map(|t| t.placement.span)
    }

    /// A *tighter* packet-delay bound than the static guarantee `d`: the
    /// network-calculus concatenation bound ("pay bursts only once") of
    /// the tenant's own paced traffic across the worst path it actually
    /// spans, with every traversed port modeled as a rate-latency server
    /// whose latency is its full queue capacity (safe against any
    /// co-tenant load admitted under C1).
    ///
    /// Always ≤ the `d` the tenant asked for when the tenant was
    /// admitted with a delay guarantee; `None` for unknown tenants or
    /// degenerate (single-host) placements.
    pub fn tight_delay_bound(&self, id: TenantId) -> Option<Dur> {
        use silo_netcalc::{path_delay_sfa, Curve, ServiceCurve};
        let t = self.tenants.get(&id)?;
        // Worst pair: the two hosts spanning the placement's level.
        let hosts: Vec<HostId> = t.placement.hosts.iter().map(|&(h, _)| h).collect();
        let (mut worst, mut path): (usize, Vec<_>) = (0, Vec::new());
        for (i, &a) in hosts.iter().enumerate() {
            for &b in &hosts[i + 1..] {
                let p = self.topology().path_ports(a, b);
                if p.len() > worst {
                    worst = p.len();
                    path = p;
                }
            }
        }
        if path.is_empty() {
            return None;
        }
        let a = Curve::dual_slope(t.guarantee.b, t.guarantee.s, t.guarantee.bmax, self.mtu);
        let hops: Vec<ServiceCurve> = path
            .iter()
            .map(|&p| {
                let info = self.topology().port(p);
                ServiceCurve::rate_latency(info.rate, info.queue_capacity())
            })
            .collect();
        path_delay_sfa(&a, &hops).map(Dur::from_secs_f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_topology::TreeParams;

    fn controller() -> SiloController {
        SiloController::new(Topology::build(TreeParams::testbed()))
    }

    fn req1() -> TenantRequest {
        TenantRequest::new(
            6,
            Guarantee {
                b: Rate::from_mbps(210),
                s: Bytes(1500),
                bmax: Rate::from_gbps(1),
                delay: Some(Dur::from_ms(1)),
            },
        )
    }

    #[test]
    fn admit_generates_pacer_configs() {
        let mut c = controller();
        let t = c.admit(&req1()).unwrap();
        assert_eq!(t.pacers.len(), 6);
        for p in &t.pacers {
            assert_eq!(p.rate, Rate::from_mbps(210));
            assert_eq!(p.burst, Bytes(1500));
            assert_eq!(p.burst_rate, Rate::from_gbps(1));
        }
        assert_eq!(c.num_tenants(), 1);
        assert_eq!(c.used_slots(), 6);
    }

    #[test]
    fn latency_bound_matches_guarantee_math() {
        let mut c = controller();
        let t = c.admit(&req1()).unwrap();
        let bound = c.message_latency_bound(t.id, Bytes(1024)).unwrap();
        assert_eq!(
            bound,
            Rate::from_gbps(1).tx_time(Bytes(1024)) + Dur::from_ms(1)
        );
    }

    #[test]
    fn evict_releases_capacity() {
        let mut c = controller();
        let total = c.topology().params().num_vm_slots();
        let mut ids = Vec::new();
        while let Ok(t) = c.admit(&req1()) {
            ids.push(t.id);
        }
        assert_eq!(c.used_slots(), total, "testbed fills completely");
        for id in ids {
            assert!(c.evict(id));
        }
        assert_eq!(c.used_slots(), 0);
        assert!(c.admit(&req1()).is_ok());
    }

    #[test]
    fn hose_rates_respect_both_ends() {
        let mut c = controller();
        let t = c.admit(&req1()).unwrap();
        // All-to-one: 5 senders into VM 0 get B/5 each.
        let pairs: Vec<(u32, u32)> = (1..=5).map(|s| (s, 0)).collect();
        let rates = c.hose_rates(t.id, &pairs).unwrap();
        for p in &pairs {
            let r = rates[p].as_bps() as f64;
            assert!((r - 210e6 / 5.0).abs() / 42e6 < 0.05);
        }
    }

    #[test]
    fn unknown_tenant_queries_return_none() {
        let c = controller();
        assert!(c.message_latency_bound(TenantId(99), Bytes(100)).is_none());
        assert!(c.span(TenantId(99)).is_none());
    }

    #[test]
    fn tight_delay_bound_beats_the_guarantee() {
        let mut c = controller();
        let t = c.admit(&req1()).unwrap();
        match c.tight_delay_bound(t.id) {
            Some(tight) => {
                // The SFA bound must respect (and normally beat) the
                // static d the tenant was admitted with.
                assert!(tight <= Dur::from_ms(1), "tight bound {tight}");
            }
            None => {
                // Single-host placement: no network path — also fine.
                assert_eq!(t.placement.hosts.len(), 1);
            }
        }
    }

    #[test]
    fn occupancy_tracks_admissions() {
        let mut c = controller();
        assert_eq!(c.occupancy(), 0.0);
        let _ = c.admit(&req1()).unwrap();
        assert!((c.occupancy() - 6.0 / 30.0).abs() < 1e-12);
    }
}
