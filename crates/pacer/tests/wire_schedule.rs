//! Golden-master and differential tests for the pacer's wire schedule
//! (§4.3.1, Fig. 9): the exact frame sequence a NIC transmits is part of
//! Silo's contract — data packets leave at their token-bucket stamps,
//! never early, with at most one minimal void frame (67.2 ns at 10 GbE)
//! of added delay, and the schedule must not depend on which stamp-queue
//! backend the batcher happens to use.

use rand::Rng;
use silo_base::{seeded_rng, Bytes, Dur, QueueBackend, Rate, Time};
use silo_pacer::batch::{Batch, FrameKind, PacedBatcher, WireFrame, MIN_VOID_BYTES};

const LINK: Rate = Rate(10_000_000_000);

/// 84 B at 10 GbE — the minimum spacing between consecutive frame starts.
fn min_frame_time() -> Dur {
    LINK.tx_time(Bytes(MIN_VOID_BYTES))
}

/// Render a batch as `start_ps kind size` lines — the golden format.
fn render<P>(batch: &Batch<P>) -> Vec<String> {
    batch
        .frames
        .iter()
        .map(|f| {
            format!(
                "{} {} {}",
                f.start.as_ps(),
                match f.kind {
                    FrameKind::Data => "data",
                    FrameKind::Void => "void",
                },
                f.size.as_u64()
            )
        })
        .collect()
}

/// Pull batches until the queue drains, starting at `t0`.
fn drain<P>(b: &mut PacedBatcher<P>, t0: Time) -> Vec<WireFrame<P>> {
    let mut frames = Vec::new();
    let mut now = t0;
    loop {
        let batch = b.next_batch(now);
        if batch.is_empty() {
            match b.next_stamp() {
                Some(s) => now = s.max(now),
                None => break,
            }
        } else {
            now = batch.done_at;
            frames.extend(batch.frames);
        }
    }
    frames
}

#[test]
fn golden_two_vm_interleaved_schedule() {
    // VM A: 1500 B frames at 0 / 6 / 12 µs (a 2 Gbps pacing chain);
    // VM B: 84 B frames at 3 / 9 µs. Every gap is filled with voids, the
    // last of which is shrunk to land the next data frame exactly on its
    // stamp. Hand-computed at 10 GbE (1500 B = 1.2 µs, 84 B = 67.2 ns).
    let mut b = PacedBatcher::new(LINK, Dur::from_us(50), Bytes(1500));
    for (us, size, id) in [
        (0u64, 1500u64, 0u32),
        (6, 1500, 1),
        (12, 1500, 2),
        (3, 84, 100),
        (9, 84, 101),
    ] {
        b.enqueue(Time::from_us(us), Bytes(size), id);
    }
    let batch = b.next_batch(Time::ZERO);
    let golden = [
        "0 data 1500",       // A0 on its stamp
        "1200000 void 1500", // gap to B0: 1.8 µs = 1500 + 750 void bytes
        "2400000 void 750",
        "3000000 data 84",   // B0 exactly on its stamp
        "3067200 void 1500", // gap to A1: 2.9328 µs = 1500+1500+666
        "4267200 void 1500",
        "5467200 void 666",
        "6000000 data 1500", // A1
        "7200000 void 1500",
        "8400000 void 750",
        "9000000 data 84", // B1
        "9067200 void 1500",
        "10267200 void 1500",
        "11467200 void 666",
        "12000000 data 1500", // A2
    ];
    assert_eq!(render(&batch), golden);
    assert_eq!(batch.done_at, Time::from_us(12) + LINK.tx_time(Bytes(1500)));
}

#[test]
fn schedule_is_back_to_back_with_min_spacing() {
    // Random stamps and sizes: the emitted schedule must be gap-free
    // (each frame starts exactly where the previous one ended) and no two
    // frame starts may be closer than one minimal frame time.
    let mut rng = seeded_rng(42);
    let mut b = PacedBatcher::new(LINK, Dur::from_us(50), Bytes(1500));
    for id in 0..500u32 {
        let stamp = Time(rng.random_range(0..2_000_000_000u64)); // 2 ms
        let size = Bytes(rng.random_range(MIN_VOID_BYTES..1501));
        b.enqueue(stamp, size, id);
    }
    let frames = drain(&mut b, Time::ZERO);
    assert_eq!(
        frames.iter().filter(|f| f.kind == FrameKind::Data).count(),
        500
    );
    for w in frames.windows(2) {
        let spacing = w[1].start - w[0].start;
        assert!(
            spacing >= min_frame_time(),
            "frames {} and {} only {} ps apart",
            w[0].start.as_ps(),
            w[1].start.as_ps(),
            spacing.as_ps()
        );
        // Within a batch frames are back-to-back; across batches the NIC
        // may idle, so allow gaps but never overlap.
        assert!(w[1].start >= w[0].start + LINK.tx_time(w[0].size));
    }
}

#[test]
fn paced_flow_achieves_98pct_of_ideal_rate_1_to_9_gbps() {
    // A single VM paced to R on a 10 G link, sending MTU frames stamped
    // exactly 1500 B / R apart. Void-frame rounding may delay each data
    // frame by < 68 ns but must never starve the flow: delivered goodput
    // stays within 2% of R at every guarantee the paper sweeps (Fig. 10).
    for gbps in 1..=9u64 {
        let rate = Rate::from_gbps(gbps);
        let period = rate.tx_time(Bytes(1500));
        let mut b = PacedBatcher::new(LINK, Dur::from_us(50), Bytes(1500));
        let n = 2_000u64;
        for i in 0..n {
            b.enqueue(Time::ZERO + period * i, Bytes(1500), i);
        }
        let frames = drain(&mut b, Time::ZERO);
        let data: Vec<&WireFrame<u64>> = frames
            .iter()
            .filter(|f| f.kind == FrameKind::Data)
            .collect();
        assert_eq!(data.len(), n as usize, "{gbps} Gbps: every frame sent");
        let span = (data.last().unwrap().start + LINK.tx_time(Bytes(1500)))
            .since(Time::ZERO)
            .as_secs_f64();
        let achieved_bps = n as f64 * 1500.0 * 8.0 / span;
        let ideal_bps = rate.as_bps() as f64;
        assert!(
            achieved_bps >= 0.98 * ideal_bps,
            "{gbps} Gbps: achieved {:.3} Gbps < 98% of ideal",
            achieved_bps / 1e9
        );
        // Conformance: no data frame ever leaves before its stamp, and
        // rounding delay stays under one minimal frame time.
        for (i, f) in data.iter().enumerate() {
            let stamp = Time::ZERO + period * i as u64;
            assert!(f.start >= stamp, "{gbps} Gbps: frame {i} left early");
            assert!(
                f.start.since(stamp) < min_frame_time(),
                "{gbps} Gbps: frame {i} delayed {} ps",
                f.start.since(stamp).as_ps()
            );
        }
    }
}

#[test]
fn wheel_and_heap_backends_emit_identical_schedules() {
    // Same random workload through the timer wheel and the reference
    // BinaryHeap: the batcher's wire schedule (and therefore everything
    // downstream of the pacer) must be byte-identical.
    let mut rng = seeded_rng(7);
    let mut wheel =
        PacedBatcher::with_queue_backend(LINK, Dur::from_us(50), Bytes(1500), QueueBackend::Wheel);
    let mut heap =
        PacedBatcher::with_queue_backend(LINK, Dur::from_us(50), Bytes(1500), QueueBackend::Heap);
    let mut now = Time::ZERO;
    for round in 0..200u32 {
        // A burst of stamps around `now` — including equal stamps (FIFO
        // tie-break is part of the contract) and stamps already in the
        // past (late arrivals from a slow pacing chain).
        for j in 0..rng.random_range(1..8u32) {
            let t = match rng.random_range(0..4u32) {
                0 => now,
                1 => Time(now.as_ps().saturating_sub(rng.random_range(0..500_000u64))),
                _ => now + Dur::from_ns(rng.random_range(0..200_000u64)),
            };
            let size = Bytes(rng.random_range(MIN_VOID_BYTES..1501));
            wheel.enqueue(t, size, (round, j));
            heap.enqueue(t, size, (round, j));
        }
        let bw = wheel.next_batch(now);
        let bh = heap.next_batch(now);
        assert_eq!(render(&bw), render(&bh), "round {round}");
        assert_eq!(
            bw.frames.iter().map(|f| f.payload).collect::<Vec<_>>(),
            bh.frames.iter().map(|f| f.payload).collect::<Vec<_>>(),
            "round {round}: payload order diverged"
        );
        assert_eq!(bw.done_at, bh.done_at);
        now = bw.done_at.max(now) + Dur::from_us(rng.random_range(1..30u64));
    }
}
