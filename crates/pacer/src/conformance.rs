//! Checking a wire schedule against an arrival curve.
//!
//! The pacer's whole correctness claim is that the *data* frames it emits
//! conform to the VM's `{B, S, Bmax}` arrival curve — that is what the
//! placement manager assumed when it bounded every switch queue. These
//! helpers verify that claim on concrete schedules (tests, Fig. 10, and
//! the packet-level simulator's assertions).

use crate::batch::{FrameKind, WireFrame};
use silo_base::{Bytes, Dur, Time};

/// Check that the data frames of `frames` (any order-preserving schedule)
/// never exceed `curve` over any frame-aligned closed interval:
/// `Σ bytes in [t_i, t_j] ≤ A(t_j − t_i) + slack` for all `i ≤ j`.
///
/// For a concave arrival curve and a finite schedule, intervals starting
/// and ending at data-frame starts are the binding ones, so the check is
/// exact. `slack` absorbs the one-frame quantization the batcher may add
/// (use one MTU).
///
/// Returns `Err((i, j))` — indices of the violating interval — on failure.
pub fn check_conformance<P>(
    frames: &[WireFrame<P>],
    curve: &silo_netcalc_curve::CurveLike<'_>,
    slack: Bytes,
) -> Result<(), (usize, usize)> {
    let data: Vec<(Time, u64)> = frames
        .iter()
        .filter(|f| f.kind == FrameKind::Data)
        .map(|f| (f.start, f.size.as_u64()))
        .collect();
    // Prefix sums for O(1) interval byte counts.
    let mut prefix = vec![0u64];
    for &(_, s) in &data {
        prefix.push(prefix.last().unwrap() + s);
    }
    for i in 0..data.len() {
        for j in i..data.len() {
            let bytes = prefix[j + 1] - prefix[i];
            let dt = (data[j].0 - data[i].0).as_secs_f64();
            let allowed = curve.eval(dt) + slack.as_f64();
            if bytes as f64 > allowed {
                return Err((i, j));
            }
        }
    }
    Ok(())
}

/// The minimum gap between consecutive *data* frame starts in a schedule —
/// the paper's pacing-granularity metric (68 ns at 10 GbE).
pub fn min_data_gap<P>(frames: &[WireFrame<P>]) -> Option<Dur> {
    let starts: Vec<Time> = frames
        .iter()
        .filter(|f| f.kind == FrameKind::Data)
        .map(|f| f.start)
        .collect();
    starts.windows(2).map(|w| w[1] - w[0]).min()
}

/// A tiny adapter so this module does not force a `silo-netcalc`
/// dependency onto `silo-pacer` users that only need gap checking: any
/// `A(t)` evaluator works.
pub mod silo_netcalc_curve {
    /// An arrival-curve evaluator: `eval(t_seconds) -> bytes`.
    pub struct CurveLike<'a> {
        pub eval: &'a dyn Fn(f64) -> f64,
    }

    impl<'a> CurveLike<'a> {
        pub fn eval(&self, t: f64) -> f64 {
            (self.eval)(t)
        }

        /// The dual-slope curve `min(bmax·t + mtu, b·t + s)` (bytes/sec,
        /// bytes).
        pub fn dual_slope_fn(
            b_bps: f64,
            s_bytes: f64,
            bmax_bps: f64,
            mtu_bytes: f64,
        ) -> impl Fn(f64) -> f64 {
            move |t: f64| (bmax_bps / 8.0 * t + mtu_bytes).min(b_bps / 8.0 * t + s_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::silo_netcalc_curve::CurveLike;
    use super::*;
    use crate::batch::PacedBatcher;
    use crate::bucket::{BucketChain, TokenBucket};
    use silo_base::Rate;

    /// Run a saturating sender through the bucket chain + batcher and
    /// return the full wire schedule.
    fn paced_schedule(b: Rate, s: Bytes, bmax: Rate, pkts: usize) -> Vec<WireFrame<u32>> {
        let link = Rate::from_gbps(10);
        let mut chain = BucketChain::new(vec![
            TokenBucket::new(bmax, Bytes(1500)),
            TokenBucket::new(b, s),
        ]);
        let mut batcher = PacedBatcher::new(link, Dur::from_us(50), Bytes(1500));
        for i in 0..pkts {
            let t = chain.stamp(Time::ZERO, Bytes(1500));
            batcher.enqueue(t, Bytes(1500), i as u32);
        }
        let mut frames = Vec::new();
        let mut now = Time::ZERO;
        loop {
            let batch = batcher.next_batch(now);
            if batch.is_empty() {
                break;
            }
            now = batch.done_at;
            frames.extend(batch.frames);
        }
        frames
    }

    #[test]
    fn paced_output_conforms_to_guarantee() {
        let b = Rate::from_gbps(1);
        let s = Bytes::from_kb(15);
        let bmax = Rate::from_gbps(2);
        let frames = paced_schedule(b, s, bmax, 200);
        let f = CurveLike::dual_slope_fn(1e9, 15_000.0, 2e9, 1500.0);
        let curve = CurveLike { eval: &f };
        check_conformance(&frames, &curve, Bytes(1500)).expect("schedule conforms");
    }

    #[test]
    fn unpaced_output_violates_guarantee() {
        // The same packets sent back-to-back at line rate blow the curve.
        let link = Rate::from_gbps(10);
        let mut frames = Vec::new();
        let mut t = Time::ZERO;
        for _ in 0..200 {
            frames.push(WireFrame {
                start: t,
                size: Bytes(1500),
                kind: FrameKind::Data,
                payload: Some(0u32),
                gap_end: None,
            });
            t += link.tx_time(Bytes(1500));
        }
        let f = CurveLike::dual_slope_fn(1e9, 15_000.0, 2e9, 1500.0);
        let curve = CurveLike { eval: &f };
        assert!(check_conformance(&frames, &curve, Bytes(1500)).is_err());
    }

    #[test]
    fn min_gap_matches_rate_limit() {
        // 1 Gbps with a drained burst: 12 us between data starts.
        let frames = paced_schedule(Rate::from_gbps(1), Bytes(1500), Rate::from_gbps(1), 50);
        let gap = min_data_gap(&frames).unwrap();
        assert_eq!(gap, Dur::from_us(12));
    }

    #[test]
    fn min_gap_none_without_data() {
        let frames: Vec<WireFrame<u32>> = Vec::new();
        assert_eq!(min_data_gap(&frames), None);
    }
}
