//! Silo's hypervisor packet pacer (paper §4.3, §5).
//!
//! The pacer makes a VM's wire traffic conform to its `{B, S, Bmax}`
//! guarantee at *packet granularity* while keeping the CPU cost of IO
//! batching. It has three pieces:
//!
//! 1. **Virtual token buckets** ([`TokenBucket`], [`BucketChain`]) — rather
//!    than draining buckets on a timer, each packet is *timestamped* with
//!    the earliest instant it may appear on the wire (§5: "we timestamp
//!    when each packet needs to be sent out"). A chain of three levels
//!    implements Fig. 8: per-destination hose buckets, the `{B, S}` tenant
//!    bucket, and the `Bmax` cap.
//!
//! 2. **Hose coordination** ([`HoseAllocator`]) — per-destination rates
//!    `B_i` with `ΣB_i ≤ B`, limited by both sender and receiver as in
//!    EyeQ, recomputed whenever the set of active VM pairs changes.
//!
//! 3. **Paced IO batching** ([`PacedBatcher`]) — packets are handed to the
//!    (simulated) NIC in 50 µs batches; the gap between consecutive data
//!    packets inside a batch is occupied by **void packets** (≥ 84 bytes on
//!    the wire, destination MAC = source MAC) that the first-hop switch
//!    discards. The NIC transmits the batch back-to-back, so the data
//!    packets end up exactly where their timestamps put them — 68 ns
//!    granularity at 10 GbE — without per-packet timers. Batches are
//!    re-armed from the DMA-completion callback of the previous batch
//!    (soft-timers, §5), which the discrete-event host model reproduces.
//!
//! [`conformance`] provides the checker used throughout the tests: a wire
//! schedule conforms to an arrival curve iff the bytes in every closed
//! frame-aligned interval stay under the curve.
//!
//! What is *not* simulated: actual CPU cycles. Figure 10a's CPU usage is
//! reproduced by [`CpuModel`], an analytic per-packet/per-batch cost model
//! calibrated to the paper's two measured endpoints; the packet *rates*
//! that drive it come from real simulated wire schedules.

pub mod batch;
pub mod bucket;
pub mod conformance;
pub mod cpu;
pub mod hose;

pub use batch::{Batch, FrameKind, PacedBatcher, VoidChunks, WireFrame, MIN_VOID_BYTES};
pub use bucket::{BucketChain, TokenBucket};
pub use conformance::{check_conformance, min_data_gap};
pub use cpu::CpuModel;
pub use hose::HoseAllocator;
