//! Virtual (timestamping) token buckets.

use silo_base::{Bytes, Rate, Time};

/// A token bucket that *timestamps* packets instead of holding them:
/// [`TokenBucket::earliest`] answers "when could a packet of this size
/// conformantly leave?" and [`TokenBucket::commit`] consumes the tokens at
/// that instant. Splitting query from commit lets a chain of buckets agree
/// on one departure time (the max of their answers) before any state
/// changes.
///
/// Token arithmetic is in `f64` bytes; departure times are quantized to
/// picoseconds deterministically, so chained simulations are reproducible.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: Rate,
    capacity: Bytes,
    tokens: f64,
    last: Time,
    violations: u64,
}

impl TokenBucket {
    /// A bucket that starts full (a fresh VM has its whole burst
    /// allowance).
    pub fn new(rate: Rate, capacity: Bytes) -> TokenBucket {
        assert!(rate.as_bps() > 0, "token bucket needs a positive rate");
        TokenBucket {
            rate,
            capacity,
            tokens: capacity.as_f64(),
            last: Time::ZERO,
            violations: 0,
        }
    }

    /// Change the refill rate (hose reallocation). Tokens accrued so far
    /// are kept.
    pub fn set_rate(&mut self, now: Time, rate: Rate) {
        assert!(rate.as_bps() > 0);
        self.refill(now);
        self.rate = rate;
    }

    pub fn rate(&self) -> Rate {
        self.rate
    }

    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Current token level after refilling to `now` (read-only estimate).
    pub fn level(&self, now: Time) -> f64 {
        let dt = now.since(self.last).as_secs_f64();
        (self.tokens + self.rate.bytes_per_sec() * dt).min(self.capacity.as_f64())
    }

    fn refill(&mut self, now: Time) {
        if now > self.last {
            self.tokens = self.level(now);
            self.last = now;
        }
    }

    /// Earliest instant ≥ `now` at which `size` tokens are available.
    ///
    /// `now` may lag the bucket's last commit (a sender stamping a backlog
    /// of packets "as of" one instant); the answer is then measured from
    /// the commit frontier, preserving correct inter-packet spacing.
    ///
    /// Sizes above the capacity are allowed (a message larger than the
    /// burst): the packet departs once the *deficit* is repaid at `rate` —
    /// callers chain a `Bmax` bucket to cap the resulting packet rate.
    pub fn earliest(&self, now: Time, size: Bytes) -> Time {
        let base = now.max(self.last);
        let have = self.level(base);
        let need = size.as_f64().min(self.capacity.as_f64());
        if have >= need {
            base
        } else {
            let wait_s = (need - have) / self.rate.bytes_per_sec();
            base + silo_base::Dur::from_secs_f64(wait_s)
        }
    }

    /// Consume `size` tokens at instant `t` (which must be ≥ the matching
    /// [`TokenBucket::earliest`] answer). Oversized packets drive the
    /// level negative; subsequent packets wait for the debt.
    ///
    /// Conservation is checked in every build: a commit before its
    /// `earliest` answer (over-spending the guarantee) increments
    /// [`TokenBucket::violations`] instead of silently passing in release
    /// mode — the simulator surfaces the total as
    /// `Metrics::token_violations`, which must stay zero.
    pub fn commit(&mut self, t: Time, size: Bytes) {
        self.refill(t);
        let floor = -(size.as_f64() - self.capacity.as_f64()).max(0.0);
        self.tokens -= size.as_f64();
        if self.tokens < floor - 1e-3 {
            self.violations += 1;
        }
    }

    /// Commits observed below the conservation floor (pacer bugs). Zero in
    /// a correct run.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Is the bucket refilled to capacity at `now`? This is the pacer
    /// dormancy predicate: a full bucket accrues nothing further, so a
    /// VM with no queued traffic and all buckets full has *no* state
    /// that changes with time — its pacer can stop ticking entirely and
    /// be resurrected by the next enqueue with no observable difference
    /// (the fast-forward argument in DESIGN.md).
    pub fn is_full(&self, now: Time) -> bool {
        self.level(now) >= self.capacity.as_f64()
    }

    /// The instant the bucket reaches capacity if left alone (`now` if
    /// already full): the horizon beyond which a dormant pacer's bucket
    /// state is a constant.
    pub fn full_at(&self, now: Time) -> Time {
        let have = self.level(now.max(self.last));
        let missing = self.capacity.as_f64() - have;
        if missing <= 0.0 {
            now
        } else {
            let wait_s = missing / self.rate.bytes_per_sec();
            now.max(self.last) + silo_base::Dur::from_secs_f64(wait_s)
        }
    }
}

/// The Fig. 8 hierarchy: a packet may depart at the max of all levels'
/// earliest times; committing debits every level at that time.
///
/// ```
/// use silo_pacer::{BucketChain, TokenBucket};
/// use silo_base::{Bytes, Rate, Time};
///
/// // {B = 1 Gbps, S = 15 KB} capped at Bmax = 2 Gbps:
/// let mut chain = BucketChain::new(vec![
///     TokenBucket::new(Rate::from_gbps(2), Bytes(1500)),
///     TokenBucket::new(Rate::from_gbps(1), Bytes::from_kb(15)),
/// ]);
/// // The first packet of a fresh burst departs immediately…
/// assert_eq!(chain.stamp(Time::ZERO, Bytes(1500)), Time::ZERO);
/// // …the next is spaced by Bmax (1500 B at 2 Gbps = 6 us).
/// assert_eq!(chain.stamp(Time::ZERO, Bytes(1500)), Time::from_us(6));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BucketChain {
    buckets: Vec<TokenBucket>,
}

impl BucketChain {
    pub fn new(buckets: Vec<TokenBucket>) -> BucketChain {
        BucketChain { buckets }
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    pub fn bucket_mut(&mut self, i: usize) -> &mut TokenBucket {
        &mut self.buckets[i]
    }

    /// Earliest conformant departure for a packet of `size`.
    pub fn earliest(&self, now: Time, size: Bytes) -> Time {
        self.buckets
            .iter()
            .map(|b| b.earliest(now, size))
            .max()
            .unwrap_or(now)
    }

    /// Stamp and commit in one step: returns the departure time.
    pub fn stamp(&mut self, now: Time, size: Bytes) -> Time {
        let t = self.earliest(now, size);
        for b in &mut self.buckets {
            b.commit(t, size);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::Dur;

    #[test]
    fn full_bucket_sends_burst_immediately() {
        let mut b = TokenBucket::new(Rate::from_gbps(1), Bytes::from_kb(15));
        let now = Time::from_us(100);
        for _ in 0..10 {
            let t = b.earliest(now, Bytes(1500));
            assert_eq!(t, now);
            b.commit(t, Bytes(1500));
        }
        // Burst exhausted: the 11th packet waits 1500 B at 1 Gbps = 12 us.
        let t = b.earliest(now, Bytes(1500));
        assert_eq!(t, now + Dur::from_us(12));
    }

    #[test]
    fn steady_state_spacing_equals_rate() {
        // After the burst drains, packets leave exactly size/rate apart.
        let mut b = TokenBucket::new(Rate::from_gbps(1), Bytes(1500));
        let mut now = Time::ZERO;
        let mut stamps = Vec::new();
        for _ in 0..100 {
            let t = b.earliest(now, Bytes(1500));
            b.commit(t, Bytes(1500));
            stamps.push(t);
            now = t; // saturating sender
        }
        for w in stamps.windows(2).skip(2) {
            assert_eq!(w[1] - w[0], Dur::from_us(12));
        }
    }

    #[test]
    fn idle_time_rebuilds_burst_up_to_capacity() {
        let mut b = TokenBucket::new(Rate::from_gbps(1), Bytes::from_kb(15));
        // Drain everything.
        let mut now = Time::ZERO;
        for _ in 0..20 {
            let t = b.earliest(now, Bytes(1500));
            b.commit(t, Bytes(1500));
            now = t;
        }
        // Idle for 1 second: tokens must cap at 15 KB, not 125 MB.
        let later = now + Dur::from_secs(1);
        assert!((b.level(later) - 15_000.0).abs() < 1.0);
    }

    #[test]
    fn oversized_message_goes_into_debt() {
        let mut b = TokenBucket::new(Rate::from_gbps(1), Bytes(1500));
        let t0 = b.earliest(Time::ZERO, Bytes(1500));
        assert_eq!(t0, Time::ZERO);
        b.commit(t0, Bytes(1500));
        // A 15 KB write debits 10 packets' worth; the next packet waits.
        let t1 = b.earliest(Time::ZERO, Bytes(15_000));
        b.commit(t1, Bytes(15_000));
        let t2 = b.earliest(t1, Bytes(1500));
        assert!(t2 > t1 + Dur::from_us(100));
    }

    #[test]
    fn chain_takes_the_max() {
        // {B=1G, S=15KB} chained with Bmax=2G: the burst drains at 2 G, not
        // instantaneously. The S bucket nets 750 B per 1500 B packet while
        // bursting (refill minus drain), so it runs dry after exactly
        // 15000/750 = 20 packets, after which B dictates 12 us spacing.
        let mut c = BucketChain::new(vec![
            TokenBucket::new(Rate::from_gbps(2), Bytes(1500)), // Bmax cap
            TokenBucket::new(Rate::from_gbps(1), Bytes::from_kb(15)), // {B,S}
        ]);
        let mut now = Time::ZERO;
        let mut stamps = Vec::new();
        for _ in 0..25 {
            let t = c.stamp(now, Bytes(1500));
            stamps.push(t);
            now = t;
        }
        // Packets 1..19 ride the burst, spaced by Bmax: 6 us (the 19th
        // packet needs 1500 tokens and 15000 − 750·18 = 1500 remain).
        for w in stamps[..19].windows(2) {
            assert_eq!(w[1] - w[0], Dur::from_us(6));
        }
        // Past the burst the B bucket dominates: 12 us.
        for w in stamps[20..].windows(2) {
            assert_eq!(w[1] - w[0], Dur::from_us(12));
        }
    }

    #[test]
    fn premature_commit_counts_a_violation() {
        let mut b = TokenBucket::new(Rate::from_gbps(1), Bytes(1500));
        // Spend the whole burst, then commit again at the same instant —
        // before `earliest` would allow it. The invariant must record the
        // over-spend (in every build profile), not abort or vanish.
        b.commit(Time::ZERO, Bytes(1500));
        assert_eq!(b.violations(), 0);
        b.commit(Time::ZERO, Bytes(1500));
        assert_eq!(b.violations(), 1);
        // A conformant commit afterwards does not add to the count.
        let t = b.earliest(Time::ZERO, Bytes(1500));
        b.commit(t, Bytes(1500));
        assert_eq!(b.violations(), 1);
    }

    #[test]
    fn dormancy_predicate_tracks_refill() {
        let mut b = TokenBucket::new(Rate::from_gbps(1), Bytes::from_kb(15));
        assert!(b.is_full(Time::ZERO), "fresh buckets start full");
        assert_eq!(b.full_at(Time::ZERO), Time::ZERO);
        b.commit(Time::ZERO, Bytes(1500));
        assert!(!b.is_full(Time::ZERO));
        // 1500 B at 1 Gbps refills in exactly 12 us.
        let full = b.full_at(Time::ZERO);
        assert_eq!(full, Time::from_us(12));
        assert!(!b.is_full(full - Dur::from_ns(1)));
        assert!(b.is_full(full));
        // Once full, the horizon is a fixed point at any later instant.
        let later = full + Dur::from_ms(3);
        assert!(b.is_full(later));
        assert_eq!(b.full_at(later), later);
    }

    #[test]
    fn set_rate_preserves_accrued_tokens() {
        let mut b = TokenBucket::new(Rate::from_gbps(1), Bytes::from_kb(15));
        let mut now = Time::ZERO;
        for _ in 0..10 {
            let t = b.earliest(now, Bytes(1500));
            b.commit(t, Bytes(1500));
            now = t;
        }
        let lvl = b.level(now);
        b.set_rate(now, Rate::from_mbps(500));
        assert!((b.level(now) - lvl).abs() < 1.0);
        assert_eq!(b.rate(), Rate::from_mbps(500));
    }
}
