//! Hose-model rate coordination between pacers (paper §4.3, after EyeQ).
//!
//! The top layer of the Fig. 8 token-bucket hierarchy holds one bucket per
//! destination VM; the rates `B_i` of those buckets must satisfy
//! `Σ B_i ≤ B` at the *sender* while traffic toward any destination is also
//! limited by the *receiver's* `B`. Source and destination hypervisors
//! exchange demands and converge on pairwise rates.
//!
//! [`HoseAllocator`] computes those rates centrally from the set of active
//! VM pairs (in the real system this state is what the pacers' coordination
//! messages distribute): an iterative proportional waterfill that respects
//! both endpoint hoses — the same fixed point EyeQ's receiver-driven
//! control converges to for symmetric demands.

use silo_base::Rate;
use std::collections::HashMap;

/// Abstract VM identifier for coordination purposes.
pub type VmRef = u32;

/// Computes hose-compliant pairwise rates for a tenant.
#[derive(Debug, Clone)]
pub struct HoseAllocator {
    /// Per-VM hose guarantee `B`.
    b: Rate,
    rounds: usize,
}

impl HoseAllocator {
    pub fn new(b: Rate) -> HoseAllocator {
        HoseAllocator { b, rounds: 8 }
    }

    /// Allocate rates for the `active` (sender, receiver) pairs.
    ///
    /// Every returned rate is positive, no sender's outgoing sum exceeds
    /// `B`, no receiver's incoming sum exceeds `B`, and the allocation is
    /// max-min fair up to the iteration tolerance.
    pub fn allocate(&self, active: &[(VmRef, VmRef)]) -> HashMap<(VmRef, VmRef), Rate> {
        let mut out = HashMap::new();
        if active.is_empty() {
            return out;
        }
        let b = self.b.as_bps() as f64;
        // Start from equal split at the sender, then alternately rescale
        // at receivers and senders (proportional waterfill). Monotone
        // decreasing per pair, bounded below; 8 rounds is plenty for the
        // fan-in/fan-out sizes tenants have.
        let mut rate: HashMap<(VmRef, VmRef), f64> = HashMap::new();
        let mut out_deg: HashMap<VmRef, usize> = HashMap::new();
        for &(s, _) in active {
            *out_deg.entry(s).or_default() += 1;
        }
        for &(s, d) in active {
            rate.insert((s, d), b / out_deg[&s] as f64);
        }
        for _ in 0..self.rounds {
            // Receiver-side scaling.
            let mut in_sum: HashMap<VmRef, f64> = HashMap::new();
            for (&(_, d), &r) in &rate {
                *in_sum.entry(d).or_default() += r;
            }
            for ((_, d), r) in rate.iter_mut() {
                let s = in_sum[d];
                if s > b {
                    *r *= b / s;
                }
            }
            // Sender-side scaling.
            let mut out_sum: HashMap<VmRef, f64> = HashMap::new();
            for (&(s, _), &r) in &rate {
                *out_sum.entry(s).or_default() += r;
            }
            for ((s, _), r) in rate.iter_mut() {
                let sum = out_sum[s];
                if sum > b {
                    *r *= b / sum;
                }
            }
        }
        for (k, r) in rate {
            out.insert(k, Rate::from_bps(r.max(1.0) as u64));
        }
        out
    }

    pub fn per_vm_guarantee(&self) -> Rate {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sums(rates: &HashMap<(VmRef, VmRef), Rate>) -> (HashMap<VmRef, u64>, HashMap<VmRef, u64>) {
        let mut tx: HashMap<VmRef, u64> = HashMap::new();
        let mut rx: HashMap<VmRef, u64> = HashMap::new();
        for (&(s, d), &r) in rates {
            *tx.entry(s).or_default() += r.as_bps();
            *rx.entry(d).or_default() += r.as_bps();
        }
        (tx, rx)
    }

    #[test]
    fn single_pair_gets_full_hose() {
        let a = HoseAllocator::new(Rate::from_gbps(1));
        let r = a.allocate(&[(0, 1)]);
        assert_eq!(r[&(0, 1)], Rate::from_gbps(1));
    }

    #[test]
    fn all_to_one_splits_receiver_hose() {
        // §4.1: N senders to one destination each get B/N.
        let a = HoseAllocator::new(Rate::from_gbps(1));
        let pairs: Vec<_> = (1..=4).map(|s| (s, 0)).collect();
        let r = a.allocate(&pairs);
        for p in &pairs {
            let got = r[p].as_bps() as f64;
            assert!((got - 0.25e9).abs() / 0.25e9 < 0.01, "{got}");
        }
    }

    #[test]
    fn one_to_all_splits_sender_hose() {
        let a = HoseAllocator::new(Rate::from_gbps(1));
        let pairs: Vec<_> = (1..=5).map(|d| (0, d)).collect();
        let r = a.allocate(&pairs);
        for p in &pairs {
            let got = r[p].as_bps() as f64;
            assert!((got - 0.2e9).abs() / 0.2e9 < 0.01, "{got}");
        }
    }

    #[test]
    fn hose_sums_never_exceed_b() {
        // Random-ish asymmetric mesh.
        let a = HoseAllocator::new(Rate::from_gbps(2));
        let pairs = vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 3),
            (2, 3),
            (4, 3),
            (4, 0),
            (1, 0),
        ];
        let r = a.allocate(&pairs);
        let (tx, rx) = sums(&r);
        for (&v, &s) in tx.iter().chain(rx.iter()) {
            assert!(s as f64 <= 2e9 * 1.001, "vm {v} hose violated: {s}");
        }
    }

    #[test]
    fn all_to_all_is_symmetric() {
        let a = HoseAllocator::new(Rate::from_gbps(1));
        let n = 6u32;
        let mut pairs = Vec::new();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    pairs.push((s, d));
                }
            }
        }
        let r = a.allocate(&pairs);
        let expect = 1e9 / (n - 1) as f64;
        for (_, rate) in r {
            assert!((rate.as_bps() as f64 - expect).abs() / expect < 0.01);
        }
    }

    #[test]
    fn empty_active_set() {
        let a = HoseAllocator::new(Rate::from_gbps(1));
        assert!(a.allocate(&[]).is_empty());
    }
}
