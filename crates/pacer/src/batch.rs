//! Paced IO Batching with void packets (paper §4.3.1, Fig. 9).
//!
//! Packets arrive already *timestamped* by the token-bucket chains of the
//! VMs sharing the NIC (stamps from different VMs interleave arbitrarily,
//! so the batcher keeps a priority queue). The batcher assembles, once per
//! DMA-completion, up to one batch window (50 µs by default) of wire
//! frames in which every gap between data packets is occupied by void
//! frames. The NIC transmits the whole batch back-to-back, so each data
//! packet hits the wire exactly at (or minimally after) its timestamp.
//!
//! Voids are only generated *between* packets of a batch: if nothing is
//! due yet the batch is empty and the NIC idles until the next stamp (§5:
//! "the pacer does not incur any extra CPU overhead when the network is
//! idle").

use silo_base::{Bytes, Dur, EventQueue, QueueBackend, Rate, Time};

/// The smallest frame a NIC can put on the wire: 64 B Ethernet minimum +
/// 20 B preamble/IPG = 84 B, i.e. 67.2 ns at 10 GbE — the pacer's spacing
/// granularity (§4.3.1).
pub const MIN_VOID_BYTES: u64 = 84;

/// What a wire slot carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A tenant packet.
    Data,
    /// A void frame: forwarded by the NIC, dropped by the first switch
    /// (its destination MAC equals its source MAC).
    Void,
}

/// One frame in a batch's wire schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrame<P> {
    /// Instant the first bit hits the wire.
    pub start: Time,
    /// Wire size (including Ethernet overheads for voids). For a
    /// coalesced void run this is the run's total bytes — the sum of the
    /// chunk sizes [`VoidChunks`] yields, not a single frame's.
    pub size: Bytes,
    pub kind: FrameKind,
    /// The tenant packet for data frames; `None` for voids.
    pub payload: Option<P>,
    /// `Some(gap boundary)` on a coalesced void run: the
    /// `head_stamp.min(window_end)` value that drove the chunk math, so
    /// an observer can re-expand the run into the exact per-chunk frames
    /// an uncoalesced batcher emits (`VoidChunks::new(start, gap_end,
    /// link, mtu)`). `None` on data frames and uncoalesced voids.
    pub gap_end: Option<Time>,
}

impl<P> WireFrame<P> {
    /// The wire interval this frame occupies on a link of rate `line`:
    /// `(start, serialization time)`. This is the span the flight
    /// recorder records per emitted frame — data and void alike claim
    /// wire time, which is the whole point of void batching.
    ///
    /// Not meaningful for a coalesced void run (`gap_end.is_some()`):
    /// integer rounding makes `tx_time(total)` differ from the sum of
    /// the per-chunk times by up to a few picoseconds per chunk —
    /// re-expand with [`VoidChunks`] instead.
    pub fn span(&self, line: Rate) -> (Time, Dur) {
        (self.start, line.tx_time(self.size))
    }
}

/// The void chunks filling the gap `[cursor, gap_end)` on a link of rate
/// `link`, exactly as [`PacedBatcher::next_batch_into`] emits them when
/// coalescing is off: each chunk covers the remaining gap clamped to
/// `[MIN_VOID_BYTES, mtu]`, and the cursor advances by the chunk's own
/// integer-rounded serialization time (so the final cursor — which may
/// overshoot `gap_end` by a sub-84 B round-up — is reproduced bit for
/// bit). Yields `(start, size)` per chunk; [`VoidChunks::cursor`] exposes
/// the post-run cursor.
#[derive(Debug, Clone)]
pub struct VoidChunks {
    cursor: Time,
    gap_end: Time,
    link: Rate,
    mtu: u64,
}

impl VoidChunks {
    pub fn new(cursor: Time, gap_end: Time, link: Rate, mtu: Bytes) -> VoidChunks {
        VoidChunks {
            cursor,
            gap_end,
            link,
            mtu: mtu.as_u64(),
        }
    }

    /// Where the wire cursor stands after the chunks yielded so far.
    pub fn cursor(&self) -> Time {
        self.cursor
    }

    /// Consume the whole run and return `(total bytes, final cursor)` —
    /// exactly what driving the iterator to exhaustion yields, but with
    /// the full-MTU prefix skipped in O(1) instead of walked chunk by
    /// chunk (the coalescing batcher's hot path: a mostly-idle 50 µs
    /// window is one ~40-chunk run).
    ///
    /// Exactness argument: while at least `mtu` gap bytes remain, every
    /// chunk is exactly `mtu` and the cursor step is the constant
    /// `tx_time(mtu)`, so `k` verified steps land where `k` iterations
    /// would (integer picoseconds are associative). The per-step
    /// predicate "chunk `i` is a full MTU" is monotone non-increasing in
    /// `i` (the cursor only advances, `bytes_in` is monotone), so
    /// checking it at `k − 1` proves it for every skipped step — no
    /// rounding model of `bytes_in`/`tx_time` is assumed. The tail runs
    /// through [`Iterator::next`] itself.
    pub fn drain_total(mut self) -> (Bytes, Time) {
        let t_mtu = self.link.tx_time(Bytes(self.mtu));
        let mut total = 0u64;
        if self.cursor < self.gap_end {
            let gap_bytes = self.link.bytes_in(self.gap_end - self.cursor).as_u64();
            // Idealized full-chunk count; verified (and lowered if the
            // integer rounding shaved a chunk) before the jump.
            let mut k = gap_bytes / self.mtu;
            let full_at = |i: u64| {
                let c = self.cursor + t_mtu * i;
                c < self.gap_end && self.link.bytes_in(self.gap_end - c).as_u64() >= self.mtu
            };
            while k > 0 && !full_at(k - 1) {
                k -= 1;
            }
            total += k * self.mtu;
            self.cursor += t_mtu * k;
        }
        for (_, size) in self.by_ref() {
            total += size.as_u64();
        }
        (Bytes(total), self.cursor)
    }
}

impl Iterator for VoidChunks {
    type Item = (Time, Bytes);

    fn next(&mut self) -> Option<(Time, Bytes)> {
        if self.cursor >= self.gap_end {
            return None;
        }
        let gap_bytes = self.link.bytes_in(self.gap_end - self.cursor).as_u64();
        let void = gap_bytes.clamp(MIN_VOID_BYTES, self.mtu);
        let start = self.cursor;
        self.cursor += self.link.tx_time(Bytes(void));
        Some((start, Bytes(void)))
    }
}

/// One NIC batch: frames transmitted back-to-back plus the DMA-completion
/// instant at which the next batch should be pulled.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch<P> {
    pub frames: Vec<WireFrame<P>>,
    /// When the NIC finishes this batch (`== the pull instant` for an
    /// empty batch: the NIC is idle; re-arm at [`PacedBatcher::next_stamp`]).
    pub done_at: Time,
}

impl<P> Batch<P> {
    /// An empty batch with no frame storage — the seed value for the
    /// scratch-reuse path ([`PacedBatcher::next_batch_into`]).
    pub fn empty() -> Batch<P> {
        Batch {
            frames: Vec::new(),
            done_at: Time::ZERO,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
    pub fn data_bytes(&self) -> Bytes {
        self.frames
            .iter()
            .filter(|f| f.kind == FrameKind::Data)
            .map(|f| f.size)
            .sum()
    }
    pub fn void_bytes(&self) -> Bytes {
        self.frames
            .iter()
            .filter(|f| f.kind == FrameKind::Void)
            .map(|f| f.size)
            .sum()
    }
}

/// Assembles paced batches for one NIC shared by many VM pacers.
///
/// The stamp queue is the same timer wheel that drives the simulator's
/// event loop ([`silo_base::EventQueue`]): earliest stamp first, FIFO on
/// equal stamps.
pub struct PacedBatcher<P> {
    link: Rate,
    window: Dur,
    mtu: Bytes,
    queue: EventQueue<(Bytes, P)>,
    /// Collapse each gap's run of void chunks into one frame (see
    /// [`PacedBatcher::coalesce_voids`]).
    coalesce: bool,
    /// Data frames scheduled *before* their stamp — release-causality
    /// violations. Structurally impossible (a packet is only popped once
    /// `head_stamp <= cursor`), so this stays zero; the audit layer folds
    /// it into its report as a checked invariant rather than trusting the
    /// code by inspection.
    early_releases: u64,
}

impl<P> PacedBatcher<P> {
    /// `link` is the NIC line rate; `window` the batch length in wire time
    /// (the paper uses 50 µs); `mtu` caps individual void frames.
    pub fn new(link: Rate, window: Dur, mtu: Bytes) -> PacedBatcher<P> {
        PacedBatcher::with_queue_backend(link, window, mtu, QueueBackend::default())
    }

    /// [`PacedBatcher::new`] with an explicit stamp-queue backend — the
    /// differential tests run the same workload through the timer wheel
    /// and the reference heap and demand identical wire schedules.
    pub fn with_queue_backend(
        link: Rate,
        window: Dur,
        mtu: Bytes,
        backend: QueueBackend,
    ) -> PacedBatcher<P> {
        assert!(window > Dur::ZERO);
        assert!(mtu.as_u64() >= MIN_VOID_BYTES);
        PacedBatcher {
            link,
            window,
            mtu,
            queue: EventQueue::with_backend(backend),
            coalesce: false,
            early_releases: 0,
        }
    }

    /// Switch coalesced void emission on or off (off by default — the
    /// unit-level contract is stated in per-chunk frames). Coalescing
    /// changes only the *representation* of a gap: one
    /// [`FrameKind::Void`] frame carrying the run's total bytes and its
    /// [`WireFrame::gap_end`], instead of one frame per chunk. The wire
    /// schedule — data frame starts, `done_at`, total void bytes — is
    /// byte-identical, because the cursor still advances through the
    /// exact per-chunk math ([`VoidChunks`]).
    pub fn coalesce_voids(&mut self, on: bool) {
        self.coalesce = on;
    }

    /// Number of data frames ever scheduled ahead of their stamp (always
    /// zero for a correct batcher; see the field doc).
    pub fn early_releases(&self) -> u64 {
        self.early_releases
    }

    /// Hand a timestamped packet to the NIC queue (any stamp order; equal
    /// stamps keep insertion order).
    pub fn enqueue(&mut self, stamp: Time, size: Bytes, payload: P) {
        self.queue.push(stamp, (size, payload));
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Earliest stamp waiting, if any — when an empty batch comes back,
    /// the host re-arms its pull timer for this instant.
    pub fn next_stamp(&mut self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Build the next batch, called at `now` (NIC idle: previous DMA
    /// completed). The batch starts at the first due stamp (never before
    /// `now`) and covers one window of wire time:
    ///
    /// * a data packet whose stamp has passed goes out immediately;
    /// * a gap before the next stamp is filled with void frames — unless
    ///   the queue is empty, in which case the batch ends early;
    /// * a sub-84 B gap is rounded **up** to one minimal void frame: data
    ///   is delayed by < 68 ns rather than released early, keeping the
    ///   schedule conformant;
    /// * if nothing is due yet (`next_stamp() > now`), the batch is empty —
    ///   the NIC idles rather than transmit leading voids.
    pub fn next_batch(&mut self, now: Time) -> Batch<P> {
        let mut batch = Batch::empty();
        self.next_batch_into(now, &mut batch);
        batch
    }

    /// [`PacedBatcher::next_batch`] writing into caller-owned storage: the
    /// frame vector is cleared and refilled, so a host pulling batches in
    /// a loop reuses one allocation instead of building a fresh `Vec`
    /// every 50 µs window. Identical schedule, byte for byte.
    pub fn next_batch_into(&mut self, now: Time, out: &mut Batch<P>) {
        out.frames.clear();
        out.done_at = now;
        let Some(head_stamp) = self.queue.peek_time() else {
            return;
        };
        if head_stamp > now {
            return;
        }
        let mut cursor = now;
        let end = now + self.window;
        while cursor < end {
            let Some(head_stamp) = self.queue.peek_time() else {
                break;
            };
            if head_stamp <= cursor {
                let (_, (size, payload)) = self.queue.pop().expect("nonempty");
                if cursor < head_stamp {
                    self.early_releases += 1;
                }
                let tx = self.link.tx_time(size);
                out.frames.push(WireFrame {
                    start: cursor,
                    size,
                    kind: FrameKind::Data,
                    payload: Some(payload),
                    gap_end: None,
                });
                cursor += tx;
            } else {
                // Fill the gap up to the stamp (or window end) with voids.
                // The head stamp cannot change until the next pop, so the
                // whole gap's chunk run is emitted here: one frame per
                // chunk, or — coalesced — one frame for the run. Either
                // way the cursor walks the same per-chunk rounding.
                let gap_end = head_stamp.min(end);
                let chunks = VoidChunks::new(cursor, gap_end, self.link, self.mtu);
                if self.coalesce {
                    let start = cursor;
                    let (total, after) = chunks.drain_total();
                    out.frames.push(WireFrame {
                        start,
                        size: total,
                        kind: FrameKind::Void,
                        payload: None,
                        gap_end: Some(gap_end),
                    });
                    cursor = after;
                } else {
                    let mut chunks = chunks;
                    for (start, size) in chunks.by_ref() {
                        out.frames.push(WireFrame {
                            start,
                            size,
                            kind: FrameKind::Void,
                            payload: None,
                            gap_end: None,
                        });
                    }
                    cursor = chunks.cursor();
                }
            }
        }
        out.done_at = cursor;
    }

    /// Pre-size the stamp queue (topology-derived bound from the host).
    pub fn reserve(&mut self, n: usize) {
        self.queue.reserve(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher() -> PacedBatcher<u32> {
        PacedBatcher::new(Rate::from_gbps(10), Dur::from_us(50), Bytes(1500))
    }

    #[test]
    fn empty_queue_gives_empty_batch() {
        let mut b = batcher();
        let batch = b.next_batch(Time::from_us(7));
        assert!(batch.is_empty());
        assert_eq!(batch.done_at, Time::from_us(7));
    }

    #[test]
    fn future_stamp_means_idle_not_voids() {
        let mut b = batcher();
        b.enqueue(Time::from_us(30), Bytes(1500), 0);
        let batch = b.next_batch(Time::ZERO);
        assert!(batch.is_empty(), "no leading voids while idle");
        assert_eq!(b.next_stamp(), Some(Time::from_us(30)));
        // Pulled again at the stamp, the packet goes out.
        let batch = b.next_batch(Time::from_us(30));
        assert_eq!(batch.frames.len(), 1);
        assert_eq!(batch.frames[0].start, Time::from_us(30));
    }

    #[test]
    fn paper_fig9_interleaving() {
        // A VM limited to 2 Gbps on a 10 G link: 1500 B data every 6 us,
        // i.e. every fifth wire slot is data, the rest void.
        let mut b = batcher();
        for i in 0..8u32 {
            b.enqueue(Time::from_us(6 * i as u64), Bytes(1500), i);
        }
        let batch = b.next_batch(Time::ZERO);
        let data: Vec<&WireFrame<u32>> = batch
            .frames
            .iter()
            .filter(|f| f.kind == FrameKind::Data)
            .collect();
        assert_eq!(data.len(), 8);
        for (i, f) in data.iter().enumerate() {
            assert_eq!(f.start, Time::from_us(6 * i as u64), "packet {i}");
            assert_eq!(f.payload, Some(i as u32));
        }
        // Gaps are filled: 6 us − 1.2 us data = 4.8 us = 6000 B of voids
        // per gap, i.e. 4 MTU voids.
        let voids = batch.frames.len() - data.len();
        assert_eq!(voids, 7 * 4);
        assert!(batch
            .frames
            .iter()
            .filter(|f| f.kind == FrameKind::Void)
            .all(|f| f.size == Bytes(1500)));
    }

    #[test]
    fn unordered_stamps_from_two_vms_interleave() {
        let mut b = batcher();
        // VM A stamps first at 0 and 24 us; VM B at 12 us — enqueued out
        // of order.
        b.enqueue(Time::ZERO, Bytes(1500), 100);
        b.enqueue(Time::from_us(24), Bytes(1500), 101);
        b.enqueue(Time::from_us(12), Bytes(1500), 200);
        let batch = b.next_batch(Time::ZERO);
        let data: Vec<u32> = batch.frames.iter().filter_map(|f| f.payload).collect();
        assert_eq!(data, vec![100, 200, 101]);
    }

    #[test]
    fn min_spacing_is_68ns() {
        // Two packets stamped 2 frame times apart: one minimal void in
        // between.
        let mut b = batcher();
        b.enqueue(Time::ZERO, Bytes(84), 0);
        b.enqueue(Time(84 * 800 * 2), Bytes(84), 1);
        let batch = b.next_batch(Time::ZERO);
        assert_eq!(batch.frames.len(), 3);
        assert_eq!(batch.frames[1].kind, FrameKind::Void);
        assert_eq!(batch.frames[1].size, Bytes(84));
        assert_eq!(
            batch.frames[2].start - batch.frames[0].start,
            Dur::from_ps(2 * 67_200)
        );
    }

    #[test]
    fn sub_minimum_gap_delays_data() {
        // Stamp 10 ns after the previous frame ends: the 84 B void pushes
        // the data 67.2 ns instead — late, never early.
        let mut b = batcher();
        b.enqueue(Time::ZERO, Bytes(1500), 0);
        let first_end = Rate::from_gbps(10).tx_time(Bytes(1500));
        let stamp = Time::ZERO + first_end + Dur::from_ns(10);
        b.enqueue(stamp, Bytes(1500), 1);
        let batch = b.next_batch(Time::ZERO);
        assert_eq!(batch.frames.len(), 3);
        let data2 = &batch.frames[2];
        assert_eq!(data2.kind, FrameKind::Data);
        assert!(data2.start >= stamp, "data must not leave early");
        assert!(data2.start.since(stamp) < Dur::from_ns(68));
    }

    #[test]
    fn no_voids_when_queue_drains() {
        let mut b = batcher();
        b.enqueue(Time::ZERO, Bytes(1500), 0);
        let batch = b.next_batch(Time::ZERO);
        assert_eq!(batch.frames.len(), 1);
        assert_eq!(
            batch.done_at,
            Time::ZERO + Rate::from_gbps(10).tx_time(Bytes(1500))
        );
    }

    #[test]
    fn window_bounds_batch_length() {
        let mut b = batcher();
        // 100 back-to-back MTU packets = 120 us of wire time.
        for i in 0..100u32 {
            b.enqueue(Time::ZERO, Bytes(1500), i);
        }
        let batch = b.next_batch(Time::ZERO);
        assert!(batch.frames.len() >= 41 && batch.frames.len() <= 43);
        assert!(batch.done_at.since(Time::ZERO) <= Dur::from_us(51));
        let batch2 = b.next_batch(batch.done_at);
        assert!(!batch2.is_empty());
        assert_eq!(batch2.frames[0].start, batch.done_at);
    }

    #[test]
    fn no_early_releases_across_batches() {
        let mut b = batcher();
        for i in 0..50u32 {
            b.enqueue(Time::from_us(3 * i as u64), Bytes(1500), i);
        }
        let mut now = Time::ZERO;
        while b.pending() > 0 {
            let batch = b.next_batch(now);
            for f in &batch.frames {
                assert!(f.start >= now);
            }
            now = batch.done_at.max(now + Dur::from_us(1));
        }
        assert_eq!(b.early_releases(), 0);
    }

    /// Feed both a coalesced and an uncoalesced batcher the same stamp
    /// stream and pull batches in lockstep, returning the two batch
    /// sequences (driven off the uncoalesced batcher's `done_at`, which
    /// the test asserts equal anyway).
    fn lockstep(
        stamps: &[(u64, u64, u32)], // (stamp µs, size B, payload)
    ) -> (Vec<Batch<u32>>, Vec<Batch<u32>>) {
        let mut plain = batcher();
        let mut co = batcher();
        co.coalesce_voids(true);
        for &(us, size, p) in stamps {
            plain.enqueue(Time::from_us(us), Bytes(size), p);
            co.enqueue(Time::from_us(us), Bytes(size), p);
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut now = Time::ZERO;
        while plain.pending() > 0 || co.pending() > 0 {
            let x = plain.next_batch(now);
            let y = co.next_batch(now);
            assert_eq!(x.done_at, y.done_at, "done_at diverged at {now:?}");
            now = if x.is_empty() {
                plain.next_stamp().expect("pending").max(now)
            } else {
                x.done_at
            };
            a.push(x);
            b.push(y);
        }
        (a, b)
    }

    #[test]
    fn coalescing_preserves_the_wire_schedule() {
        // Fig. 9 shape plus a jittered tail: multi-chunk gaps, a sub-84 B
        // round-up, and a window-clipped gap all appear.
        let mut stamps: Vec<(u64, u64, u32)> = (0..8).map(|i| (6 * i, 1500, i as u32)).collect();
        stamps.push((100, 1500, 100));
        stamps.push((101, 84, 101));
        let (plain, co) = lockstep(&stamps);
        for (x, y) in plain.iter().zip(&co) {
            let data = |b: &Batch<u32>| -> Vec<(Time, Bytes, Option<u32>)> {
                b.frames
                    .iter()
                    .filter(|f| f.kind == FrameKind::Data)
                    .map(|f| (f.start, f.size, f.payload))
                    .collect()
            };
            assert_eq!(data(x), data(y), "data schedule must be untouched");
            assert_eq!(x.void_bytes(), y.void_bytes(), "total void bytes");
            assert_eq!(x.data_bytes(), y.data_bytes());
        }
        let frames = |b: &[Batch<u32>]| b.iter().map(|x| x.frames.len()).sum::<usize>();
        assert!(
            frames(&co) < frames(&plain),
            "coalescing must shrink the frame count ({} vs {})",
            frames(&co),
            frames(&plain)
        );
    }

    #[test]
    fn coalesced_runs_reexpand_to_the_exact_chunk_frames() {
        // Every coalesced void run, expanded through VoidChunks with its
        // recorded gap boundary, reproduces the uncoalesced frames bit
        // for bit — starts, sizes, order, and the post-run cursor.
        let stamps: Vec<(u64, u64, u32)> = vec![
            (0, 1500, 0),
            (6, 1500, 1),
            (30, 300, 2),
            (31, 84, 3),
            (70, 1500, 4),
        ];
        let (plain, co) = lockstep(&stamps);
        let link = Rate::from_gbps(10);
        for (x, y) in plain.iter().zip(&co) {
            let mut expanded: Vec<(Time, Bytes)> = Vec::new();
            for f in &y.frames {
                match f.kind {
                    FrameKind::Data => {}
                    FrameKind::Void => {
                        let gap_end = f.gap_end.expect("coalesced voids carry their gap");
                        let mut chunks = VoidChunks::new(f.start, gap_end, link, Bytes(1500));
                        let run: Vec<(Time, Bytes)> = chunks.by_ref().collect();
                        assert_eq!(
                            run.iter().map(|(_, s)| s.as_u64()).sum::<u64>(),
                            f.size.as_u64(),
                            "run total must equal the coalesced frame size"
                        );
                        expanded.extend(run);
                    }
                }
            }
            let voids: Vec<(Time, Bytes)> = x
                .frames
                .iter()
                .filter(|f| f.kind == FrameKind::Void)
                .map(|f| (f.start, f.size))
                .collect();
            assert_eq!(expanded, voids, "re-expansion must be bit-exact");
        }
    }

    #[test]
    fn drain_total_matches_the_iterator_exactly() {
        // The O(1) full-MTU bulk skip must agree with chunk-by-chunk
        // iteration — total bytes AND final cursor — across gap lengths
        // that hit every regime: sub-minimum, between 84 B and MTU, exact
        // MTU multiples, off-grid picosecond offsets, and multi-window
        // runs. Two link rates exercise different tx-time roundings.
        for link in [Rate::from_gbps(10), Rate::from_gbps(40)] {
            for mtu in [Bytes(1500), Bytes(9000)] {
                for ps in [
                    1u64,
                    17,
                    66_000,
                    67_200,
                    67_201,
                    1_200_000,
                    1_200_001,
                    2_400_000,
                    3_600_007,
                    50_000_000,
                    50_000_001,
                    49_999_999,
                    123_456_789,
                    1_000_000_007,
                ] {
                    let start = Time::from_ns(3); // off-grid cursor
                    let gap_end = start + Dur::from_ps(ps);
                    let it = VoidChunks::new(start, gap_end, link, mtu);
                    let mut total = 0u64;
                    let mut walked = it.clone();
                    for (_, size) in walked.by_ref() {
                        total += size.as_u64();
                    }
                    let (fast_total, fast_cursor) = it.drain_total();
                    assert_eq!(
                        (fast_total.as_u64(), fast_cursor),
                        (total, walked.cursor()),
                        "bulk skip diverged at link={link:?} mtu={mtu:?} gap={ps}ps"
                    );
                }
            }
        }
    }

    #[test]
    fn late_stamps_are_sent_asap_in_order() {
        let mut b = batcher();
        b.enqueue(Time::ZERO, Bytes(1500), 0);
        b.enqueue(Time::from_ns(100), Bytes(1500), 1);
        let batch = b.next_batch(Time::from_us(100));
        assert_eq!(batch.frames.len(), 2);
        assert_eq!(batch.frames[0].start, Time::from_us(100));
        assert_eq!(batch.frames[1].kind, FrameKind::Data);
        assert_eq!(
            batch.frames[1].start,
            Time::from_us(100) + Rate::from_gbps(10).tx_time(Bytes(1500))
        );
    }
}
