//! Paced IO Batching with void packets (paper §4.3.1, Fig. 9).
//!
//! Packets arrive already *timestamped* by the token-bucket chains of the
//! VMs sharing the NIC (stamps from different VMs interleave arbitrarily,
//! so the batcher keeps a priority queue). The batcher assembles, once per
//! DMA-completion, up to one batch window (50 µs by default) of wire
//! frames in which every gap between data packets is occupied by void
//! frames. The NIC transmits the whole batch back-to-back, so each data
//! packet hits the wire exactly at (or minimally after) its timestamp.
//!
//! Voids are only generated *between* packets of a batch: if nothing is
//! due yet the batch is empty and the NIC idles until the next stamp (§5:
//! "the pacer does not incur any extra CPU overhead when the network is
//! idle").

use silo_base::{Bytes, Dur, EventQueue, QueueBackend, Rate, Time};

/// The smallest frame a NIC can put on the wire: 64 B Ethernet minimum +
/// 20 B preamble/IPG = 84 B, i.e. 67.2 ns at 10 GbE — the pacer's spacing
/// granularity (§4.3.1).
pub const MIN_VOID_BYTES: u64 = 84;

/// What a wire slot carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A tenant packet.
    Data,
    /// A void frame: forwarded by the NIC, dropped by the first switch
    /// (its destination MAC equals its source MAC).
    Void,
}

/// One frame in a batch's wire schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrame<P> {
    /// Instant the first bit hits the wire.
    pub start: Time,
    /// Wire size (including Ethernet overheads for voids).
    pub size: Bytes,
    pub kind: FrameKind,
    /// The tenant packet for data frames; `None` for voids.
    pub payload: Option<P>,
}

impl<P> WireFrame<P> {
    /// The wire interval this frame occupies on a link of rate `line`:
    /// `(start, serialization time)`. This is the span the flight
    /// recorder records per emitted frame — data and void alike claim
    /// wire time, which is the whole point of void batching.
    pub fn span(&self, line: Rate) -> (Time, Dur) {
        (self.start, line.tx_time(self.size))
    }
}

/// One NIC batch: frames transmitted back-to-back plus the DMA-completion
/// instant at which the next batch should be pulled.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch<P> {
    pub frames: Vec<WireFrame<P>>,
    /// When the NIC finishes this batch (`== the pull instant` for an
    /// empty batch: the NIC is idle; re-arm at [`PacedBatcher::next_stamp`]).
    pub done_at: Time,
}

impl<P> Batch<P> {
    /// An empty batch with no frame storage — the seed value for the
    /// scratch-reuse path ([`PacedBatcher::next_batch_into`]).
    pub fn empty() -> Batch<P> {
        Batch {
            frames: Vec::new(),
            done_at: Time::ZERO,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
    pub fn data_bytes(&self) -> Bytes {
        self.frames
            .iter()
            .filter(|f| f.kind == FrameKind::Data)
            .map(|f| f.size)
            .sum()
    }
    pub fn void_bytes(&self) -> Bytes {
        self.frames
            .iter()
            .filter(|f| f.kind == FrameKind::Void)
            .map(|f| f.size)
            .sum()
    }
}

/// Assembles paced batches for one NIC shared by many VM pacers.
///
/// The stamp queue is the same timer wheel that drives the simulator's
/// event loop ([`silo_base::EventQueue`]): earliest stamp first, FIFO on
/// equal stamps.
pub struct PacedBatcher<P> {
    link: Rate,
    window: Dur,
    mtu: Bytes,
    queue: EventQueue<(Bytes, P)>,
    /// Data frames scheduled *before* their stamp — release-causality
    /// violations. Structurally impossible (a packet is only popped once
    /// `head_stamp <= cursor`), so this stays zero; the audit layer folds
    /// it into its report as a checked invariant rather than trusting the
    /// code by inspection.
    early_releases: u64,
}

impl<P> PacedBatcher<P> {
    /// `link` is the NIC line rate; `window` the batch length in wire time
    /// (the paper uses 50 µs); `mtu` caps individual void frames.
    pub fn new(link: Rate, window: Dur, mtu: Bytes) -> PacedBatcher<P> {
        PacedBatcher::with_queue_backend(link, window, mtu, QueueBackend::default())
    }

    /// [`PacedBatcher::new`] with an explicit stamp-queue backend — the
    /// differential tests run the same workload through the timer wheel
    /// and the reference heap and demand identical wire schedules.
    pub fn with_queue_backend(
        link: Rate,
        window: Dur,
        mtu: Bytes,
        backend: QueueBackend,
    ) -> PacedBatcher<P> {
        assert!(window > Dur::ZERO);
        assert!(mtu.as_u64() >= MIN_VOID_BYTES);
        PacedBatcher {
            link,
            window,
            mtu,
            queue: EventQueue::with_backend(backend),
            early_releases: 0,
        }
    }

    /// Number of data frames ever scheduled ahead of their stamp (always
    /// zero for a correct batcher; see the field doc).
    pub fn early_releases(&self) -> u64 {
        self.early_releases
    }

    /// Hand a timestamped packet to the NIC queue (any stamp order; equal
    /// stamps keep insertion order).
    pub fn enqueue(&mut self, stamp: Time, size: Bytes, payload: P) {
        self.queue.push(stamp, (size, payload));
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Earliest stamp waiting, if any — when an empty batch comes back,
    /// the host re-arms its pull timer for this instant.
    pub fn next_stamp(&mut self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Build the next batch, called at `now` (NIC idle: previous DMA
    /// completed). The batch starts at the first due stamp (never before
    /// `now`) and covers one window of wire time:
    ///
    /// * a data packet whose stamp has passed goes out immediately;
    /// * a gap before the next stamp is filled with void frames — unless
    ///   the queue is empty, in which case the batch ends early;
    /// * a sub-84 B gap is rounded **up** to one minimal void frame: data
    ///   is delayed by < 68 ns rather than released early, keeping the
    ///   schedule conformant;
    /// * if nothing is due yet (`next_stamp() > now`), the batch is empty —
    ///   the NIC idles rather than transmit leading voids.
    pub fn next_batch(&mut self, now: Time) -> Batch<P> {
        let mut batch = Batch::empty();
        self.next_batch_into(now, &mut batch);
        batch
    }

    /// [`PacedBatcher::next_batch`] writing into caller-owned storage: the
    /// frame vector is cleared and refilled, so a host pulling batches in
    /// a loop reuses one allocation instead of building a fresh `Vec`
    /// every 50 µs window. Identical schedule, byte for byte.
    pub fn next_batch_into(&mut self, now: Time, out: &mut Batch<P>) {
        out.frames.clear();
        out.done_at = now;
        let Some(head_stamp) = self.queue.peek_time() else {
            return;
        };
        if head_stamp > now {
            return;
        }
        let mut cursor = now;
        let end = now + self.window;
        while cursor < end {
            let Some(head_stamp) = self.queue.peek_time() else {
                break;
            };
            if head_stamp <= cursor {
                let (_, (size, payload)) = self.queue.pop().expect("nonempty");
                if cursor < head_stamp {
                    self.early_releases += 1;
                }
                let tx = self.link.tx_time(size);
                out.frames.push(WireFrame {
                    start: cursor,
                    size,
                    kind: FrameKind::Data,
                    payload: Some(payload),
                });
                cursor += tx;
            } else {
                // Fill the gap up to the stamp (or window end) with voids.
                let gap_end = head_stamp.min(end);
                let gap_bytes = self.link.bytes_in(gap_end - cursor).as_u64();
                let void = gap_bytes.clamp(MIN_VOID_BYTES, self.mtu.as_u64());
                let tx = self.link.tx_time(Bytes(void));
                out.frames.push(WireFrame {
                    start: cursor,
                    size: Bytes(void),
                    kind: FrameKind::Void,
                    payload: None,
                });
                cursor += tx;
            }
        }
        out.done_at = cursor;
    }

    /// Pre-size the stamp queue (topology-derived bound from the host).
    pub fn reserve(&mut self, n: usize) {
        self.queue.reserve(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher() -> PacedBatcher<u32> {
        PacedBatcher::new(Rate::from_gbps(10), Dur::from_us(50), Bytes(1500))
    }

    #[test]
    fn empty_queue_gives_empty_batch() {
        let mut b = batcher();
        let batch = b.next_batch(Time::from_us(7));
        assert!(batch.is_empty());
        assert_eq!(batch.done_at, Time::from_us(7));
    }

    #[test]
    fn future_stamp_means_idle_not_voids() {
        let mut b = batcher();
        b.enqueue(Time::from_us(30), Bytes(1500), 0);
        let batch = b.next_batch(Time::ZERO);
        assert!(batch.is_empty(), "no leading voids while idle");
        assert_eq!(b.next_stamp(), Some(Time::from_us(30)));
        // Pulled again at the stamp, the packet goes out.
        let batch = b.next_batch(Time::from_us(30));
        assert_eq!(batch.frames.len(), 1);
        assert_eq!(batch.frames[0].start, Time::from_us(30));
    }

    #[test]
    fn paper_fig9_interleaving() {
        // A VM limited to 2 Gbps on a 10 G link: 1500 B data every 6 us,
        // i.e. every fifth wire slot is data, the rest void.
        let mut b = batcher();
        for i in 0..8u32 {
            b.enqueue(Time::from_us(6 * i as u64), Bytes(1500), i);
        }
        let batch = b.next_batch(Time::ZERO);
        let data: Vec<&WireFrame<u32>> = batch
            .frames
            .iter()
            .filter(|f| f.kind == FrameKind::Data)
            .collect();
        assert_eq!(data.len(), 8);
        for (i, f) in data.iter().enumerate() {
            assert_eq!(f.start, Time::from_us(6 * i as u64), "packet {i}");
            assert_eq!(f.payload, Some(i as u32));
        }
        // Gaps are filled: 6 us − 1.2 us data = 4.8 us = 6000 B of voids
        // per gap, i.e. 4 MTU voids.
        let voids = batch.frames.len() - data.len();
        assert_eq!(voids, 7 * 4);
        assert!(batch
            .frames
            .iter()
            .filter(|f| f.kind == FrameKind::Void)
            .all(|f| f.size == Bytes(1500)));
    }

    #[test]
    fn unordered_stamps_from_two_vms_interleave() {
        let mut b = batcher();
        // VM A stamps first at 0 and 24 us; VM B at 12 us — enqueued out
        // of order.
        b.enqueue(Time::ZERO, Bytes(1500), 100);
        b.enqueue(Time::from_us(24), Bytes(1500), 101);
        b.enqueue(Time::from_us(12), Bytes(1500), 200);
        let batch = b.next_batch(Time::ZERO);
        let data: Vec<u32> = batch.frames.iter().filter_map(|f| f.payload).collect();
        assert_eq!(data, vec![100, 200, 101]);
    }

    #[test]
    fn min_spacing_is_68ns() {
        // Two packets stamped 2 frame times apart: one minimal void in
        // between.
        let mut b = batcher();
        b.enqueue(Time::ZERO, Bytes(84), 0);
        b.enqueue(Time(84 * 800 * 2), Bytes(84), 1);
        let batch = b.next_batch(Time::ZERO);
        assert_eq!(batch.frames.len(), 3);
        assert_eq!(batch.frames[1].kind, FrameKind::Void);
        assert_eq!(batch.frames[1].size, Bytes(84));
        assert_eq!(
            batch.frames[2].start - batch.frames[0].start,
            Dur::from_ps(2 * 67_200)
        );
    }

    #[test]
    fn sub_minimum_gap_delays_data() {
        // Stamp 10 ns after the previous frame ends: the 84 B void pushes
        // the data 67.2 ns instead — late, never early.
        let mut b = batcher();
        b.enqueue(Time::ZERO, Bytes(1500), 0);
        let first_end = Rate::from_gbps(10).tx_time(Bytes(1500));
        let stamp = Time::ZERO + first_end + Dur::from_ns(10);
        b.enqueue(stamp, Bytes(1500), 1);
        let batch = b.next_batch(Time::ZERO);
        assert_eq!(batch.frames.len(), 3);
        let data2 = &batch.frames[2];
        assert_eq!(data2.kind, FrameKind::Data);
        assert!(data2.start >= stamp, "data must not leave early");
        assert!(data2.start.since(stamp) < Dur::from_ns(68));
    }

    #[test]
    fn no_voids_when_queue_drains() {
        let mut b = batcher();
        b.enqueue(Time::ZERO, Bytes(1500), 0);
        let batch = b.next_batch(Time::ZERO);
        assert_eq!(batch.frames.len(), 1);
        assert_eq!(
            batch.done_at,
            Time::ZERO + Rate::from_gbps(10).tx_time(Bytes(1500))
        );
    }

    #[test]
    fn window_bounds_batch_length() {
        let mut b = batcher();
        // 100 back-to-back MTU packets = 120 us of wire time.
        for i in 0..100u32 {
            b.enqueue(Time::ZERO, Bytes(1500), i);
        }
        let batch = b.next_batch(Time::ZERO);
        assert!(batch.frames.len() >= 41 && batch.frames.len() <= 43);
        assert!(batch.done_at.since(Time::ZERO) <= Dur::from_us(51));
        let batch2 = b.next_batch(batch.done_at);
        assert!(!batch2.is_empty());
        assert_eq!(batch2.frames[0].start, batch.done_at);
    }

    #[test]
    fn no_early_releases_across_batches() {
        let mut b = batcher();
        for i in 0..50u32 {
            b.enqueue(Time::from_us(3 * i as u64), Bytes(1500), i);
        }
        let mut now = Time::ZERO;
        while b.pending() > 0 {
            let batch = b.next_batch(now);
            for f in &batch.frames {
                assert!(f.start >= now);
            }
            now = batch.done_at.max(now + Dur::from_us(1));
        }
        assert_eq!(b.early_releases(), 0);
    }

    #[test]
    fn late_stamps_are_sent_asap_in_order() {
        let mut b = batcher();
        b.enqueue(Time::ZERO, Bytes(1500), 0);
        b.enqueue(Time::from_ns(100), Bytes(1500), 1);
        let batch = b.next_batch(Time::from_us(100));
        assert_eq!(batch.frames.len(), 2);
        assert_eq!(batch.frames[0].start, Time::from_us(100));
        assert_eq!(batch.frames[1].kind, FrameKind::Data);
        assert_eq!(
            batch.frames[1].start,
            Time::from_us(100) + Rate::from_gbps(10).tx_time(Bytes(1500))
        );
    }
}
