//! Analytic CPU-cost model for the pacer (paper Fig. 10a).
//!
//! The paper measures whole-system CPU usage on Xeon E5-2665 (2.4 GHz)
//! machines and observes that it is proportional to the *packet rate*
//! handed to the NIC (data + void), plus the per-packet cost of the
//! non-LSO network stack for data packets. We cannot measure cycles in a
//! simulation, so Figure 10a is reproduced with this linear model whose
//! two coefficients are calibrated to the paper's measured endpoints:
//!
//! * void-only at 10 Gbps (14.88 Mpps of 84 B frames) costs ≈ 0.6 cores
//!   → ≈ 97 cycles per pacer frame;
//! * un-paced 10 Gbps with LSO disabled (≈ 0.83 Mpps MTU) costs ≈ 1.9
//!   cores → ≈ 5.5 k cycles per stack packet.
//!
//! The packet *rates* fed into the model come from real simulated wire
//! schedules, so the shape of Fig. 10a (CPU tracking the void-dominated
//! packet rate, peaking near 9 Gbps) is produced by the actual mechanism.

/// Linear CPU model: `cores = (stack·data + pacer·(data+void) + batch·batches) / clock`.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Core clock in cycles/second (2.4 GHz in the paper's testbed).
    pub clock_hz: f64,
    /// Network-stack cycles per data packet (LSO disabled).
    pub cycles_stack_per_data_pkt: f64,
    /// Pacer + driver cycles per frame handed to the NIC (data or void).
    pub cycles_pacer_per_frame: f64,
    /// Cycles per batch pulled on DMA completion (soft-timer path).
    pub cycles_per_batch: f64,
}

impl Default for CpuModel {
    fn default() -> CpuModel {
        CpuModel {
            clock_hz: 2.4e9,
            cycles_stack_per_data_pkt: 5_500.0,
            cycles_pacer_per_frame: 97.0,
            cycles_per_batch: 2_000.0,
        }
    }
}

impl CpuModel {
    /// Cores consumed at the given steady-state rates.
    pub fn cores(&self, data_pps: f64, void_pps: f64, batches_per_sec: f64) -> f64 {
        let cycles = self.cycles_stack_per_data_pkt * data_pps
            + self.cycles_pacer_per_frame * (data_pps + void_pps)
            + self.cycles_per_batch * batches_per_sec;
        cycles / self.clock_hz
    }

    /// Cores for the no-pacing baseline (stack cost only).
    pub fn cores_unpaced(&self, data_pps: f64) -> f64 {
        self.cycles_stack_per_data_pkt * data_pps / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VOID_ONLY_10G_PPS: f64 = 10e9 / (84.0 * 8.0); // 14.88 Mpps

    #[test]
    fn void_only_endpoint_matches_paper() {
        let m = CpuModel::default();
        let cores = m.cores(0.0, VOID_ONLY_10G_PPS, 20_000.0);
        assert!((cores - 0.6).abs() < 0.05, "{cores}");
    }

    #[test]
    fn unpaced_line_rate_endpoint_matches_paper() {
        let m = CpuModel::default();
        let data_pps = 10e9 / (1500.0 * 8.0);
        let cores = m.cores_unpaced(data_pps);
        assert!((cores - 1.9).abs() < 0.1, "{cores}");
    }

    #[test]
    fn pacing_overhead_at_line_rate_is_small() {
        // §5: "at full line-rate of 10 Gbps, our pacer incurs less than
        // 0.2 cores worth of extra CPU cycles compared to no pacing" — at
        // 10 G there is no room for voids, so the delta is just the pacer
        // per-frame and batch cost.
        let m = CpuModel::default();
        let data_pps = 10e9 / (1500.0 * 8.0);
        let delta = m.cores(data_pps, 0.0, 20_000.0) - m.cores_unpaced(data_pps);
        assert!(delta < 0.2, "{delta}");
    }

    #[test]
    fn cpu_tracks_packet_rate() {
        // More voids (lower rate limit) -> more frames -> more cores in
        // the pacer term.
        let m = CpuModel::default();
        let pacer_1g = m.cores(0.0, 9e9 / (84.0 * 8.0), 20_000.0);
        let pacer_5g = m.cores(0.0, 5e9 / (84.0 * 8.0), 20_000.0);
        assert!(pacer_1g > pacer_5g);
    }
}
