//! Host/switch partitioning for the within-cell sharded simulator.
//!
//! A [`PartitionMap`] splits one topology into `shards` disjoint pieces
//! along *rack* boundaries: a rack's hosts, its host links (both port
//! directions), and its ToR uplink (both directions) all belong to one
//! shard, so the only links whose two queue endpoints live in different
//! shards — the *cut* — are ToR uplinks of racks not owned by shard 0
//! (aggregation and core egress ports are all pinned to shard 0). Rack
//! granularity is what makes the cut small and the lookahead non-trivial:
//! every intra-rack path (`SameRack`: host NIC → ToR down-port) stays
//! inside one shard, and every cut crossing traverses a full link whose
//! latency is at least the propagation delay.
//!
//! The conservative lookahead exported here is exactly that bound:
//! `prop_delay` plus the minimum wire time across cut links — and the
//! minimum wire time is zero, because zero-byte frames (pure ACK stamps)
//! are transmitted with zero serialization delay. A packet leaving shard
//! A at time `now` therefore cannot affect shard B before
//! `now + lookahead`, which is the window bound the sharded event queue
//! relies on.

use crate::tree::{HostId, PortId, Topology};
use silo_base::Dur;

/// Rack-contiguous partition of a topology into `shards` pieces, with the
/// derived conservative lookahead. See the module docs for the ownership
/// rule and the cut definition.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    shards: usize,
    /// Owning shard per host.
    host_owner: Vec<u16>,
    /// Owning shard per directed port (switch and NIC ports; the
    /// simulator's synthetic loopback ports are resolved by host instead).
    port_owner: Vec<u16>,
    /// ToR uplinks whose rack owner differs from the aggregation owner
    /// (shard 0) — the partition cut.
    cut_links: Vec<u32>,
    /// Conservative lower bound on cross-cut latency.
    lookahead: Dur,
}

impl PartitionMap {
    /// Partition `topo` into (at most) `shards` rack-contiguous pieces.
    /// `shards` is clamped to `[1, num_racks]`; shard `s` owns racks
    /// `[s*R/N, (s+1)*R/N)`, which balances within one rack.
    pub fn build(topo: &Topology, shards: usize) -> PartitionMap {
        let racks = topo.num_racks();
        let shards = shards.clamp(1, racks);
        let rack_owner: Vec<u16> = (0..racks).map(|r| (r * shards / racks) as u16).collect();

        let host_owner: Vec<u16> = (0..topo.num_hosts())
            .map(|h| rack_owner[topo.rack_of(HostId(h as u32))])
            .collect();

        let mut port_owner = vec![0u16; topo.num_ports()];
        for (h, &owner) in host_owner.iter().enumerate() {
            let link = topo.host_link(HostId(h as u32));
            port_owner[PortId::up(link).0 as usize] = owner;
            port_owner[PortId::down(link).0 as usize] = owner;
        }
        let mut cut_links = Vec::new();
        for (r, &owner) in rack_owner.iter().enumerate() {
            let link = topo.tor_link(r);
            // Both directions of the ToR uplink run on the rack's shard;
            // the aggregation side (shard 0) reaches it through the cut.
            port_owner[PortId::up(link).0 as usize] = owner;
            port_owner[PortId::down(link).0 as usize] = owner;
            if owner != 0 {
                cut_links.push(link.0);
            }
        }
        // Aggregation/core egress ports stay at the default owner 0.

        // Minimum cross-cut latency: propagation plus minimum wire time.
        // Zero-byte frames (ACK stamps) serialize in zero time, so the
        // wire-time floor is 0 and propagation alone is the bound.
        let lookahead = if shards > 1 {
            topo.params().prop_delay
        } else {
            Dur(0)
        };

        PartitionMap {
            shards,
            host_owner,
            port_owner,
            cut_links,
            lookahead,
        }
    }

    /// Effective shard count after clamping.
    pub fn shards(&self) -> usize {
        self.shards
    }

    #[inline]
    pub fn owner_of_host(&self, h: usize) -> usize {
        self.host_owner[h] as usize
    }

    #[inline]
    pub fn owner_of_port(&self, p: PortId) -> usize {
        self.port_owner[p.0 as usize] as usize
    }

    /// Links whose two queue endpoints live in different shards.
    pub fn cut_links(&self) -> &[u32] {
        &self.cut_links
    }

    /// Conservative minimum latency across any cut link (0 when serial).
    pub fn lookahead(&self) -> Dur {
        self.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;

    fn topo() -> Topology {
        Topology::build(TreeParams::ns2_paper())
    }

    #[test]
    fn single_shard_has_no_cut() {
        let t = topo();
        let p = PartitionMap::build(&t, 1);
        assert_eq!(p.shards(), 1);
        assert!(p.cut_links().is_empty());
        assert_eq!(p.lookahead(), Dur(0));
        for h in 0..t.num_hosts() {
            assert_eq!(p.owner_of_host(h), 0);
        }
    }

    #[test]
    fn shards_clamp_to_rack_count() {
        let t = topo(); // 2 pods × 5 racks = 10 racks
        assert_eq!(PartitionMap::build(&t, 64).shards(), 10);
        assert_eq!(PartitionMap::build(&t, 0).shards(), 1);
    }

    #[test]
    fn rack_granularity_and_balance() {
        let t = topo();
        for shards in [2usize, 4, 5, 10] {
            let p = PartitionMap::build(&t, shards);
            assert_eq!(p.shards(), shards);
            // Every rack is wholly owned and every shard is populated.
            let mut rack_owners = vec![usize::MAX; t.num_racks()];
            let mut counts = vec![0usize; shards];
            for h in 0..t.num_hosts() {
                let r = t.rack_of(HostId(h as u32));
                let o = p.owner_of_host(h);
                if rack_owners[r] == usize::MAX {
                    rack_owners[r] = o;
                } else {
                    assert_eq!(rack_owners[r], o, "rack {r} split across shards");
                }
                counts[o] += 1;
            }
            assert!(counts.iter().all(|&c| c > 0), "empty shard at {shards}");
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(
                max - min <= t.params().servers_per_rack,
                "unbalanced: {counts:?}"
            );
            // Rack ownership is monotone (contiguous ranges).
            assert!(rack_owners.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    /// The operational invariant the simulator relies on: along any
    /// source→destination port path, ownership changes only at ToR-uplink
    /// hops (the declared cut) — never at a host link.
    #[test]
    fn ownership_changes_only_at_cut_links() {
        let t = topo();
        let p = PartitionMap::build(&t, 4);
        let probe: Vec<u32> = vec![0, 1, 39, 40, 200, 201, 399];
        for &a in &probe {
            for &b in &probe {
                if a == b {
                    continue;
                }
                let ports = t.path_ports(HostId(a), HostId(b));
                let is_tor = |q: PortId| {
                    let l = q.link().0 as usize;
                    l >= t.num_hosts() && l < t.num_hosts() + t.num_racks()
                };
                for w in ports.windows(2) {
                    let (o0, o1) = (p.owner_of_port(w[0]), p.owner_of_port(w[1]));
                    if o0 != o1 {
                        assert!(
                            is_tor(w[0]) || is_tor(w[1]),
                            "ownership changed off the ToR cut between {:?} and {:?}",
                            w[0],
                            w[1]
                        );
                    }
                }
                // Host NIC port and the host itself always agree.
                let up = PortId::up(t.host_link(HostId(a)));
                assert_eq!(p.owner_of_port(up), p.owner_of_host(a as usize));
            }
        }
    }

    #[test]
    fn cut_links_are_tor_uplinks_of_nonzero_shards() {
        let t = topo();
        let p = PartitionMap::build(&t, 5);
        // 10 racks / 5 shards: racks 0-1 → shard 0, others nonzero.
        assert_eq!(p.cut_links().len(), 8);
        for &l in p.cut_links() {
            let l = l as usize;
            assert!(
                l >= t.num_hosts() && l < t.num_hosts() + t.num_racks(),
                "cut link {l} is not a ToR uplink"
            );
        }
        assert_eq!(p.lookahead(), t.params().prop_delay);
    }
}
