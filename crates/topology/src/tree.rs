//! The hierarchical tree structure and its queries.

use silo_base::{Bytes, Dur, Rate};

/// A host (server) index, `0 .. Topology::num_hosts()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// A node in the tree (host, ToR, aggregation, or core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// An undirected link (child node ↔ its parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// A *directed* link endpoint with an egress queue.
///
/// `PortId(2·link)` is the **up** direction (child → parent; the queue
/// lives at the child: a host NIC or a switch uplink port) and
/// `PortId(2·link + 1)` is the **down** direction (parent → child; a
/// switch egress port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u32);

impl PortId {
    pub fn up(link: LinkId) -> PortId {
        PortId(link.0 * 2)
    }
    pub fn down(link: LinkId) -> PortId {
        PortId(link.0 * 2 + 1)
    }
    pub fn link(self) -> LinkId {
        LinkId(self.0 / 2)
    }
    pub fn is_up(self) -> bool {
        self.0.is_multiple_of(2)
    }
}

/// How close two hosts are in the hierarchy — the "height" Silo's greedy
/// placement minimizes (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    SameHost,
    SameRack,
    SamePod,
    CrossPod,
}

/// Parameters of a three-tier tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    pub pods: usize,
    pub racks_per_pod: usize,
    pub servers_per_rack: usize,
    pub vm_slots_per_server: usize,
    /// Host NIC / access link rate (10 Gbps in the paper).
    pub host_link: Rate,
    /// Oversubscription at the ToR uplink: logical uplink capacity is
    /// `servers_per_rack · host_link / tor_oversub`.
    pub tor_oversub: f64,
    /// Oversubscription at the aggregation uplink.
    pub agg_oversub: f64,
    /// Packet buffer per switch egress port (312 KB in the paper's sims).
    pub switch_buffer: Bytes,
    /// Effective queue budget of the sending host NIC. With Silo's paced
    /// IO batching this is one batch window of data (§5: 50 µs batches).
    pub nic_buffer: Bytes,
    /// Per-hop propagation delay (sub-µs in datacenters).
    pub prop_delay: Dur,
}

impl TreeParams {
    /// The paper's ns2 setup (§6.2): 10 racks × 40 servers × 8 VM slots,
    /// 10 GbE, 1:5 oversubscription, 312 KB shallow-buffered ports.
    pub fn ns2_paper() -> TreeParams {
        TreeParams {
            pods: 2,
            racks_per_pod: 5,
            servers_per_rack: 40,
            vm_slots_per_server: 8,
            host_link: Rate::from_gbps(10),
            tor_oversub: 5.0,
            agg_oversub: 5.0,
            switch_buffer: Bytes::from_kb(312),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        }
    }

    /// A smaller tree with the same *shape*, scaled by `f ∈ (0, 1]`: the
    /// rack/pod structure (and therefore path lengths and queue
    /// capacities) is preserved; only the servers per rack shrink, which
    /// keeps packet-level runs fast while preserving oversubscription
    /// ratios and the multi-tier contention pattern.
    pub fn ns2_scaled(f: f64) -> TreeParams {
        let mut p = TreeParams::ns2_paper();
        p.servers_per_rack = ((p.servers_per_rack as f64 * f).round() as usize).max(2);
        p
    }

    /// The §6.1 testbed: five servers under one 10 GbE switch, six VM
    /// slots each. Modeled as one rack; the "pod/core" layers are unused.
    pub fn testbed() -> TreeParams {
        TreeParams {
            pods: 1,
            racks_per_pod: 1,
            servers_per_rack: 5,
            vm_slots_per_server: 6,
            host_link: Rate::from_gbps(10),
            tor_oversub: 1.0,
            agg_oversub: 1.0,
            switch_buffer: Bytes::from_kb(312),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        }
    }

    pub fn num_hosts(&self) -> usize {
        self.pods * self.racks_per_pod * self.servers_per_rack
    }

    pub fn num_vm_slots(&self) -> usize {
        self.num_hosts() * self.vm_slots_per_server
    }
}

/// An immutable, queryable three-tier tree. Node/link/port identifiers are
/// dense, so per-port state elsewhere is a plain `Vec` indexed by
/// `PortId.0`.
#[derive(Debug, Clone)]
pub struct Topology {
    params: TreeParams,
    hosts: usize,
    racks: usize,
    pods: usize,
    tor_uplink: Rate,
    agg_uplink: Rate,
}

impl Topology {
    pub fn build(params: TreeParams) -> Topology {
        assert!(params.pods >= 1 && params.racks_per_pod >= 1 && params.servers_per_rack >= 1);
        assert!(params.vm_slots_per_server >= 1);
        assert!(params.tor_oversub >= 1.0 && params.agg_oversub >= 1.0);
        let racks = params.pods * params.racks_per_pod;
        let tor_uplink = params
            .host_link
            .mul_f64(params.servers_per_rack as f64 / params.tor_oversub);
        let agg_uplink = tor_uplink.mul_f64(params.racks_per_pod as f64 / params.agg_oversub);
        Topology {
            hosts: params.num_hosts(),
            racks,
            pods: params.pods,
            tor_uplink,
            agg_uplink,
            params,
        }
    }

    pub fn params(&self) -> &TreeParams {
        &self.params
    }
    pub fn num_hosts(&self) -> usize {
        self.hosts
    }
    pub fn num_racks(&self) -> usize {
        self.racks
    }
    pub fn num_pods(&self) -> usize {
        self.pods
    }
    pub fn num_links(&self) -> usize {
        // one per host, one per rack, one per pod
        self.hosts + self.racks + self.pods
    }
    pub fn num_ports(&self) -> usize {
        self.num_links() * 2
    }
    pub fn slots_per_server(&self) -> usize {
        self.params.vm_slots_per_server
    }

    pub fn rack_of(&self, h: HostId) -> usize {
        h.0 as usize / self.params.servers_per_rack
    }
    pub fn pod_of(&self, h: HostId) -> usize {
        self.rack_of(h) / self.params.racks_per_pod
    }
    pub fn hosts_in_rack(&self, rack: usize) -> impl Iterator<Item = HostId> + '_ {
        let s = self.params.servers_per_rack;
        (rack * s..(rack + 1) * s).map(|i| HostId(i as u32))
    }
    pub fn racks_in_pod(&self, pod: usize) -> std::ops::Range<usize> {
        let r = self.params.racks_per_pod;
        pod * r..(pod + 1) * r
    }

    /// The access link of a host.
    pub fn host_link(&self, h: HostId) -> LinkId {
        LinkId(h.0)
    }
    /// The uplink of a rack's ToR.
    pub fn tor_link(&self, rack: usize) -> LinkId {
        LinkId((self.hosts + rack) as u32)
    }
    /// The uplink of a pod's aggregation layer.
    pub fn agg_link(&self, pod: usize) -> LinkId {
        LinkId((self.hosts + self.racks + pod) as u32)
    }

    /// Line rate of a link.
    pub fn link_rate(&self, l: LinkId) -> Rate {
        let i = l.0 as usize;
        if i < self.hosts {
            self.params.host_link
        } else if i < self.hosts + self.racks {
            self.tor_uplink
        } else {
            self.agg_uplink
        }
    }

    /// Static properties of a directed port.
    ///
    /// A *logical* uplink of rate `k × host_link` stands in for `k`
    /// physical ports (ECMP-spread), so it gets `k ×` the per-port buffer —
    /// this keeps the per-tier queue capacity equal to the physical
    /// network's (the paper's ~250 µs for 312 KB at 10 G).
    pub fn port(&self, p: PortId) -> PortInfo {
        let link = p.link();
        let rate = self.link_rate(link);
        let is_host_link = (link.0 as usize) < self.hosts;
        // The up direction of a host link is the host's NIC; every other
        // port is a switch egress port.
        let buffer = if is_host_link && p.is_up() {
            self.params.nic_buffer
        } else {
            let phys_ports =
                (rate.as_bps() as f64 / self.params.host_link.as_bps() as f64).round() as u64;
            Bytes(self.params.switch_buffer.as_u64() * phys_ports.max(1))
        };
        PortInfo {
            rate,
            buffer,
            is_nic: is_host_link && p.is_up(),
        }
    }

    /// Total rate at which traffic can physically *arrive* at the switch
    /// that owns port `p`, excluding `p`'s own link. Bursts crossing `p`
    /// can never exceed this rate, which tightens the placement's backlog
    /// bounds (cf. Fig. 5's "800 KB at 20 Gbps").
    ///
    /// For a host NIC the notion is not meaningful (traffic comes from the
    /// local vswitch); we return the NIC line rate.
    pub fn ingress_capacity(&self, p: PortId) -> Rate {
        let link = p.link();
        let i = link.0 as usize;
        let srv = self.params.servers_per_rack as u64;
        let rk = self.params.racks_per_pod as u64;
        if i < self.hosts {
            if p.is_up() {
                // The host NIC itself.
                self.params.host_link
            } else {
                // ToR egress toward a host: uplink + the rack's other hosts.
                self.tor_uplink + self.params.host_link * (srv - 1)
            }
        } else if i < self.hosts + self.racks {
            if p.is_up() {
                // ToR uplink egress: fed by the rack's hosts.
                self.params.host_link * srv
            } else {
                // Agg egress toward a ToR: core uplink + other racks.
                self.agg_uplink + self.tor_uplink * (rk - 1)
            }
        } else if p.is_up() {
            // Agg uplink egress: fed by the pod's ToRs.
            self.tor_uplink * rk
        } else {
            // Core egress toward a pod: the other pods' uplinks.
            self.agg_uplink * (self.pods as u64 - 1).max(1)
        }
    }

    /// Hierarchy level shared by two hosts.
    pub fn level(&self, a: HostId, b: HostId) -> Level {
        if a == b {
            Level::SameHost
        } else if self.rack_of(a) == self.rack_of(b) {
            Level::SameRack
        } else if self.pod_of(a) == self.pod_of(b) {
            Level::SamePod
        } else {
            Level::CrossPod
        }
    }

    /// The ordered list of egress queues a packet traverses from `src`'s
    /// NIC to `dst`'s NIC (paper Fig. 3's "network delay" scope).
    ///
    /// Same host → empty (the vswitch delivers locally). Otherwise the
    /// first port is always the sender's NIC.
    pub fn path_ports(&self, src: HostId, dst: HostId) -> Vec<PortId> {
        let mut ports = Vec::with_capacity(6);
        match self.level(src, dst) {
            Level::SameHost => {}
            Level::SameRack => {
                ports.push(PortId::up(self.host_link(src)));
                ports.push(PortId::down(self.host_link(dst)));
            }
            Level::SamePod => {
                ports.push(PortId::up(self.host_link(src)));
                ports.push(PortId::up(self.tor_link(self.rack_of(src))));
                ports.push(PortId::down(self.tor_link(self.rack_of(dst))));
                ports.push(PortId::down(self.host_link(dst)));
            }
            Level::CrossPod => {
                ports.push(PortId::up(self.host_link(src)));
                ports.push(PortId::up(self.tor_link(self.rack_of(src))));
                ports.push(PortId::up(self.agg_link(self.pod_of(src))));
                ports.push(PortId::down(self.agg_link(self.pod_of(dst))));
                ports.push(PortId::down(self.tor_link(self.rack_of(dst))));
                ports.push(PortId::down(self.host_link(dst)));
            }
        }
        ports
    }

    /// Number of propagation hops between two hosts (for the simulators).
    pub fn path_hops(&self, src: HostId, dst: HostId) -> usize {
        self.path_ports(src, dst).len()
    }

    /// The undirected links the `src → dst` path traverses, deduplicated.
    /// In a tree this is also the `dst → src` link set, so "does this
    /// path survive a link failure" is a membership test against it.
    pub fn path_links(&self, src: HostId, dst: HostId) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self
            .path_ports(src, dst)
            .into_iter()
            .map(|p| p.link())
            .collect();
        links.sort_unstable();
        links.dedup();
        links
    }

    /// Does the `src → dst` path avoid every link in `failed`? Same-host
    /// pairs always do (the vswitch never crosses the fabric).
    pub fn path_intact(&self, src: HostId, dst: HostId, failed: &[LinkId]) -> bool {
        if failed.is_empty() || src == dst {
            return true;
        }
        self.path_links(src, dst)
            .iter()
            .all(|l| !failed.contains(l))
    }

    /// The hosts severed from the rest of the tree when `l` fails: the
    /// subtree below the link. Hosts inside it can still reach each other
    /// (their paths stay below the failure); only cross-cut paths die.
    pub fn hosts_below(&self, l: LinkId) -> Vec<HostId> {
        let i = l.0 as usize;
        if i < self.hosts {
            vec![HostId(i as u32)]
        } else if i < self.hosts + self.racks {
            self.hosts_in_rack(i - self.hosts).collect()
        } else {
            let pod = i - self.hosts - self.racks;
            self.racks_in_pod(pod)
                .flat_map(|r| self.hosts_in_rack(r))
                .collect()
        }
    }

    /// All ports whose queueing state a set of hosts can influence — the
    /// ports on any path between two of them. Used by placement to know
    /// which constraints to re-check.
    pub fn ports_between(&self, hosts: &[HostId]) -> Vec<PortId> {
        let mut ports: Vec<PortId> = Vec::new();
        for (i, &a) in hosts.iter().enumerate() {
            for &b in &hosts[i + 1..] {
                ports.extend(self.path_ports(a, b));
                ports.extend(self.path_ports(b, a));
            }
        }
        ports.sort_unstable();
        ports.dedup();
        ports
    }

    /// Like [`Topology::vms_on_sending_side`] but also counts the distinct
    /// *hosts* on the sending side — their access links physically cap the
    /// rate at which the cut's burst can arrive.
    pub fn cut_stats(&self, p: PortId, placement: &[(HostId, usize)]) -> (usize, usize) {
        let link = p.link();
        let i = link.0 as usize;
        let in_subtree = |h: HostId| -> bool {
            if i < self.hosts {
                h.0 as usize == i
            } else if i < self.hosts + self.racks {
                self.rack_of(h) == i - self.hosts
            } else {
                self.pod_of(h) == i - self.hosts - self.racks
            }
        };
        let mut vms_in = 0usize;
        let mut hosts_in = 0usize;
        let mut vms_total = 0usize;
        let mut hosts_total = 0usize;
        for &(h, k) in placement {
            vms_total += k;
            hosts_total += 1;
            if in_subtree(h) {
                vms_in += k;
                hosts_in += 1;
            }
        }
        if p.is_up() {
            (vms_in, hosts_in)
        } else {
            (vms_total - vms_in, hosts_total - hosts_in)
        }
    }

    /// For a directed port, how a set of (host, count) VM placements splits
    /// across it: returns the number of VMs on the *sending* side (the side
    /// whose traffic crosses this port).
    ///
    /// For an up port at link of node X, the sending side is the subtree
    /// under X; for a down port it is everything outside that subtree.
    pub fn vms_on_sending_side(&self, p: PortId, placement: &[(HostId, usize)]) -> usize {
        let link = p.link();
        let i = link.0 as usize;
        let in_subtree = |h: HostId| -> bool {
            if i < self.hosts {
                h.0 as usize == i
            } else if i < self.hosts + self.racks {
                self.rack_of(h) == i - self.hosts
            } else {
                self.pod_of(h) == i - self.hosts - self.racks
            }
        };
        let inside: usize = placement
            .iter()
            .filter(|(h, _)| in_subtree(*h))
            .map(|(_, k)| *k)
            .sum();
        if p.is_up() {
            inside
        } else {
            let total: usize = placement.iter().map(|(_, k)| *k).sum();
            total - inside
        }
    }
}

/// Static properties of one directed port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortInfo {
    pub rate: Rate,
    pub buffer: Bytes,
    /// True for a host NIC's up port (paced by the hypervisor, not a
    /// switch queue).
    pub is_nic: bool,
}

impl PortInfo {
    /// Queue capacity: the maximum queueing delay before drops (§4.2.1).
    pub fn queue_capacity(&self) -> Dur {
        self.rate.tx_time(self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Topology {
        Topology::build(TreeParams::ns2_paper())
    }

    #[test]
    fn ns2_paper_shape() {
        let t = t();
        assert_eq!(t.num_hosts(), 400);
        assert_eq!(t.num_racks(), 10);
        assert_eq!(t.num_pods(), 2);
        assert_eq!(t.params().num_vm_slots(), 3200);
        assert_eq!(t.num_links(), 400 + 10 + 2);
    }

    #[test]
    fn oversubscription_sets_uplink_rates() {
        let t = t();
        // 40 servers × 10 G / 5 = 80 G logical ToR uplink.
        assert_eq!(t.link_rate(t.tor_link(0)), Rate::from_gbps(80));
        // 5 racks × 80 G / 5 = 80 G logical agg uplink.
        assert_eq!(t.link_rate(t.agg_link(0)), Rate::from_gbps(80));
        assert_eq!(t.link_rate(t.host_link(HostId(7))), Rate::from_gbps(10));
    }

    #[test]
    fn rack_and_pod_indexing() {
        let t = t();
        assert_eq!(t.rack_of(HostId(0)), 0);
        assert_eq!(t.rack_of(HostId(39)), 0);
        assert_eq!(t.rack_of(HostId(40)), 1);
        assert_eq!(t.pod_of(HostId(199)), 0);
        assert_eq!(t.pod_of(HostId(200)), 1);
        assert_eq!(t.hosts_in_rack(1).count(), 40);
        assert_eq!(t.racks_in_pod(1), 5..10);
    }

    #[test]
    fn path_same_host_is_empty() {
        assert!(t().path_ports(HostId(3), HostId(3)).is_empty());
    }

    #[test]
    fn path_same_rack() {
        let t = t();
        let p = t.path_ports(HostId(0), HostId(1));
        assert_eq!(p.len(), 2);
        assert!(t.port(p[0]).is_nic);
        assert!(!t.port(p[1]).is_nic);
        assert!(p[0].is_up() && !p[1].is_up());
    }

    #[test]
    fn path_same_pod_and_cross_pod_lengths() {
        let t = t();
        assert_eq!(t.path_ports(HostId(0), HostId(40)).len(), 4);
        assert_eq!(t.path_ports(HostId(0), HostId(200)).len(), 6);
    }

    #[test]
    fn path_is_reverse_symmetric_in_length() {
        let t = t();
        for (a, b) in [(0u32, 1u32), (0, 40), (0, 200)] {
            assert_eq!(
                t.path_ports(HostId(a), HostId(b)).len(),
                t.path_ports(HostId(b), HostId(a)).len()
            );
        }
    }

    #[test]
    fn queue_capacity_follows_port_kind() {
        let t = t();
        // ToR down-port toward a host: 10 G, 312 KB -> 249.6 us.
        let down = PortId::down(t.host_link(HostId(0)));
        assert!((t.port(down).queue_capacity().as_us_f64() - 249.6).abs() < 0.01);
        // NIC: 64 KB at 10 G -> 51.2 us.
        let nic = PortId::up(t.host_link(HostId(0)));
        assert!((t.port(nic).queue_capacity().as_us_f64() - 51.2).abs() < 0.01);
        // ToR uplink: logical 80 G = 8 physical ports, 8 × 312 KB buffer,
        // so the queue capacity stays at the physical per-port 249.6 us.
        let tor_up = PortId::up(t.tor_link(0));
        assert!((t.port(tor_up).queue_capacity().as_us_f64() - 249.6).abs() < 0.01);
    }

    #[test]
    fn ingress_capacity_per_port_kind() {
        let t = t();
        // ToR uplink egress: 40 hosts × 10 G.
        assert_eq!(
            t.ingress_capacity(PortId::up(t.tor_link(0))),
            Rate::from_gbps(400)
        );
        // ToR egress toward a host: 80 G uplink + 39 × 10 G.
        assert_eq!(
            t.ingress_capacity(PortId::down(t.host_link(HostId(0)))),
            Rate::from_gbps(80 + 390)
        );
        // Core egress toward a pod: the other pod's 80 G uplink.
        assert_eq!(
            t.ingress_capacity(PortId::down(t.agg_link(0))),
            Rate::from_gbps(80)
        );
        // NIC.
        assert_eq!(
            t.ingress_capacity(PortId::up(t.host_link(HostId(0)))),
            Rate::from_gbps(10)
        );
    }

    #[test]
    fn vms_on_sending_side_splits_correctly() {
        let t = t();
        // 3 VMs on host 0, 2 on host 1 (same rack), 4 on host 40 (rack 1).
        let placement = vec![
            (HostId(0), 3usize),
            (HostId(1), 2usize),
            (HostId(40), 4usize),
        ];
        // Host 0's NIC: 3 VMs send up.
        assert_eq!(
            t.vms_on_sending_side(PortId::up(t.host_link(HostId(0))), &placement),
            3
        );
        // Down toward host 0: everyone else (6).
        assert_eq!(
            t.vms_on_sending_side(PortId::down(t.host_link(HostId(0))), &placement),
            6
        );
        // Rack 0 uplink: 5 VMs inside rack 0.
        assert_eq!(
            t.vms_on_sending_side(PortId::up(t.tor_link(0)), &placement),
            5
        );
        // Down into rack 1: 5 VMs outside it.
        assert_eq!(
            t.vms_on_sending_side(PortId::down(t.tor_link(1)), &placement),
            5
        );
    }

    #[test]
    fn ports_between_deduplicates() {
        let t = t();
        let hosts = [HostId(0), HostId(1), HostId(2)];
        let ports = t.ports_between(&hosts);
        // 3 NIC up-ports + 3 host down-ports, each counted once.
        assert_eq!(ports.len(), 6);
    }

    #[test]
    fn testbed_shape() {
        let t = Topology::build(TreeParams::testbed());
        assert_eq!(t.num_hosts(), 5);
        assert_eq!(t.params().num_vm_slots(), 30);
        assert_eq!(t.path_ports(HostId(0), HostId(4)).len(), 2);
    }

    #[test]
    fn scaled_params_preserve_oversub() {
        let p = TreeParams::ns2_scaled(0.25);
        let t = Topology::build(p);
        // 10 servers/rack × 10 G / 5 = 20 G.
        assert_eq!(p.servers_per_rack, 10);
        assert_eq!(t.link_rate(t.tor_link(0)), Rate::from_gbps(20));
    }
}
