//! Datacenter topology for Silo: the multi-rooted tree of §4.2.1.
//!
//! Silo's placement, both simulators, and the admission benchmarks all walk
//! the same hierarchical structure: *servers* (hosts with VM slots) grouped
//! into *racks* under a top-of-rack (ToR) switch, racks grouped into *pods*
//! under aggregation switches, and pods joined by a core layer. Links can be
//! oversubscribed at each level (the paper's ns2 topology uses 1:5).
//!
//! The multi-rooted core/aggregation layers of a production network exist
//! for fault tolerance and ECMP spreading; for *capacity and queueing*
//! accounting, a level of `k` parallel switches is equivalent to one
//! logical switch with `k×` the port capacity (Silo itself reasons about
//! logical uplink capacity, not individual roots). We therefore model one
//! logical aggregation node per pod and one logical core node, with link
//! rates derived from the configured oversubscription ratios — and document
//! this as our one topological simplification.
//!
//! Every *directed* link endpoint that can queue packets is a [`PortId`]:
//! the sending host's NIC for up-traffic, and a switch egress port
//! everywhere else. [`Topology::path_ports`] returns exactly the queues a
//! packet traverses NIC-to-NIC, which is the path Silo's delay guarantee
//! covers (paper Fig. 3).

mod partition;
mod tree;

pub use partition::PartitionMap;
pub use tree::{HostId, Level, LinkId, NodeId, PortId, PortInfo, Topology, TreeParams};
