//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crate cache, so the
//! workspace carries the small slice of `rand`'s 0.9 API that Silo actually
//! uses: [`rngs::StdRng`], the [`Rng`] / [`SeedableRng`] traits with
//! `random`, `random_range` and `seed_from_u64`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every use in this
//! workspace only requires a deterministic, well-distributed stream from a
//! `u64` seed, which this provides. Determinism is part of the contract:
//! the golden-schedule and cross-thread-determinism tests depend on the
//! stream never changing, so treat any edit here as a breaking change.

/// A source of random 64-bit words. Everything else derives from this.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG (`rng.random::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for f64 {
    /// Uniform in [0, 1): the top 53 bits scaled by 2^-53.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with `random_range(lo..hi)`.
pub trait UniformInt: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "random_range requires a non-empty range");
                let span = (hi - lo) as u64;
                // Widening-multiply range reduction (Lemire, without the
                // rejection step): bias is < 2^-64 per draw, far below
                // anything the simulations can resolve, and it keeps the
                // draw one multiplication — and one stream element — wide.
                let hi128 = (rng.next_u64() as u128 * span as u128) >> 64;
                lo + hi128 as $t
            }
        }
    )*};
}
impl_uniform_int!(u64, usize, u32, u16, u8);

/// The user-facing randomness trait (method names follow `rand` 0.9).
pub trait Rng: RngCore {
    /// Sample a uniform value of type `T` (`f64` in [0,1), full-range ints).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `lo..hi` (half-open, non-empty).
    fn random_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna): 256-bit state, seeded via
    /// SplitMix64 exactly as the reference implementation recommends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (only `shuffle` is used in this workspace).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..(i + 1));
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_is_uniform_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
