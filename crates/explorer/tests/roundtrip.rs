//! The fault-plan interchange format is exact: `parse(dump(p)) == p` for
//! every plan, structurally *and* physically (the reparsed plan drives a
//! byte-identical simulation).

use rand::rngs::StdRng;
use rand::SeedableRng;
use silo_base::prop::forall;
use silo_base::Dur;
use silo_base::Time;
use silo_explorer::{cell_bounds, cell_topo, run_plan};
use silo_simnet::{FaultKind, FaultPlan};

/// A random plan: a few mutation steps from empty, which exercises every
/// kind, windowed and open-ended events, and zero-length windows.
fn random_plan(rng: &mut StdRng) -> FaultPlan {
    let topo = cell_topo();
    let bounds = cell_bounds(&topo, Dur::from_ms(40));
    let mut plan = FaultPlan::new();
    // Seed the per-case RNG from the forall stream so shrinking stays
    // meaningful (the plan itself is the input, not the RNG).
    for _ in 0..6 {
        plan = plan.mutate(rng, &bounds);
    }
    plan
}

#[test]
fn faultplan_json_round_trips_structurally() {
    forall(
        "parse(dump(plan)) == plan",
        random_plan,
        |p| p.shrink_candidates(),
        |p| {
            let text = p.to_json();
            let back =
                FaultPlan::from_json(&text).map_err(|e| format!("reparse failed: {e}\n{text}"))?;
            if back != *p {
                return Err(format!("round-trip changed the plan:\n{p:?}\n{back:?}"));
            }
            if back.to_json() != text {
                return Err("dump(parse(dump(p))) != dump(p)".into());
            }
            Ok(())
        },
    );
}

/// Drift-factor edge values: `-0.0` and subnormals are outside what
/// `validate` admits for a runnable plan, but the interchange format is
/// exact for *every* plan (the explorer serializes raw mutants before
/// sanitizing, and a byte-lossy writer would silently corrupt a corpus).
/// `FaultPlan`'s `PartialEq` uses `f64` equality, where `-0.0 == 0.0` —
/// only the byte-level dump comparison can catch a writer that
/// normalizes the sign away, so this test pins bits, not values.
#[test]
fn faultplan_json_round_trips_float_edge_factors() {
    let factors = [
        -0.0,
        0.0,
        5e-324,                                // smallest subnormal
        f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
        1.0 + f64::EPSILON,                    // smallest runnable drift > 1
        64.0,
    ];
    for (i, &factor) in factors.iter().enumerate() {
        let plan =
            FaultPlan::new().pacer_drift(Time::from_ms(1), Time::from_ms(2), i as u32, factor);
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).expect("reparse");
        assert_eq!(back, plan, "factor {factor:?} changed structurally");
        assert_eq!(
            back.to_json(),
            text,
            "factor {factor:?} dump is not byte-stable"
        );
        let FaultKind::PacerDrift { factor: f, .. } = back.events[0].kind else {
            panic!("kind changed");
        };
        assert_eq!(
            f.to_bits(),
            factor.to_bits(),
            "factor {factor:?} lost bits (e.g. -0.0 sign) in the round trip"
        );
    }
}

#[test]
fn faultplan_json_round_trips_physically() {
    // A handful of random plans through short real simulations: the
    // reparsed plan must produce byte-identical physics.
    let topo = cell_topo();
    let dur = Dur::from_ms(10);
    let mut rng = StdRng::seed_from_u64(0x0FAB_51D0);
    for case in 0..4 {
        let plan = random_plan(&mut rng);
        let back = FaultPlan::from_json(&plan.to_json()).expect("reparse");
        let a = run_plan(&topo, &plan, dur, 11, true);
        let b = run_plan(&topo, &back, dur, 11, true);
        assert_eq!(
            a.canonical_json(),
            b.canonical_json(),
            "case {case}: physics diverged after a JSON round-trip: {plan:?}"
        );
        assert_eq!(
            a.trace.as_ref().unwrap().to_jsonl(),
            b.trace.as_ref().unwrap().to_jsonl(),
            "case {case}: traces diverged after a JSON round-trip"
        );
    }
}
