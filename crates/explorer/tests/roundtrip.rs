//! The fault-plan interchange format is exact: `parse(dump(p)) == p` for
//! every plan, structurally *and* physically (the reparsed plan drives a
//! byte-identical simulation).

use rand::rngs::StdRng;
use rand::SeedableRng;
use silo_base::prop::forall;
use silo_base::Dur;
use silo_explorer::{cell_bounds, cell_topo, run_plan};
use silo_simnet::FaultPlan;

/// A random plan: a few mutation steps from empty, which exercises every
/// kind, windowed and open-ended events, and zero-length windows.
fn random_plan(rng: &mut StdRng) -> FaultPlan {
    let topo = cell_topo();
    let bounds = cell_bounds(&topo, Dur::from_ms(40));
    let mut plan = FaultPlan::new();
    // Seed the per-case RNG from the forall stream so shrinking stays
    // meaningful (the plan itself is the input, not the RNG).
    for _ in 0..6 {
        plan = plan.mutate(rng, &bounds);
    }
    plan
}

#[test]
fn faultplan_json_round_trips_structurally() {
    forall(
        "parse(dump(plan)) == plan",
        random_plan,
        |p| p.shrink_candidates(),
        |p| {
            let text = p.to_json();
            let back =
                FaultPlan::from_json(&text).map_err(|e| format!("reparse failed: {e}\n{text}"))?;
            if back != *p {
                return Err(format!("round-trip changed the plan:\n{p:?}\n{back:?}"));
            }
            if back.to_json() != text {
                return Err("dump(parse(dump(p))) != dump(p)".into());
            }
            Ok(())
        },
    );
}

#[test]
fn faultplan_json_round_trips_physically() {
    // A handful of random plans through short real simulations: the
    // reparsed plan must produce byte-identical physics.
    let topo = cell_topo();
    let dur = Dur::from_ms(10);
    let mut rng = StdRng::seed_from_u64(0x0FAB_51D0);
    for case in 0..4 {
        let plan = random_plan(&mut rng);
        let back = FaultPlan::from_json(&plan.to_json()).expect("reparse");
        let a = run_plan(&topo, &plan, dur, 11, true);
        let b = run_plan(&topo, &back, dur, 11, true);
        assert_eq!(
            a.canonical_json(),
            b.canonical_json(),
            "case {case}: physics diverged after a JSON round-trip: {plan:?}"
        );
        assert_eq!(
            a.trace.as_ref().unwrap().to_jsonl(),
            b.trace.as_ref().unwrap().to_jsonl(),
            "case {case}: traces diverged after a JSON round-trip"
        );
    }
}
