//! The search loop is deterministic and, on a healthy engine, finds no
//! counterexamples at a small budget.

use silo_base::Dur;
use silo_explorer::{explore, replay, ExploreConfig};
use silo_simnet::FaultPlan;

fn smoke_cfg() -> ExploreConfig {
    ExploreConfig {
        budget: 16,
        seed: 0x5110_F417,
        dur: Dur::from_ms(10),
        max_shrink_steps: 50,
    }
}

#[test]
fn explore_is_deterministic() {
    let a = explore(&smoke_cfg());
    let b = explore(&smoke_cfg());
    assert_eq!(a.evaluated, b.evaluated);
    assert_eq!(a.frontier.len(), b.frontier.len());
    for ((pa, sa), (pb, sb)) in a.frontier.iter().zip(&b.frontier) {
        assert_eq!(pa, pb);
        assert_eq!(sa, sb);
    }
    assert_eq!(a.render(), b.render(), "report must be byte-deterministic");
}

#[test]
fn healthy_engine_yields_no_counterexamples() {
    let rep = explore(&smoke_cfg());
    assert!(
        rep.counterexamples.is_empty(),
        "explorer found attribution failures:\n{}",
        rep.render()
    );
    // The seeds alone cover several behaviors: the frontier must have
    // grown past the baseline signature.
    assert!(
        rep.frontier.len() >= 3,
        "suspiciously small frontier:\n{}",
        rep.render()
    );
    assert_eq!(rep.evaluated, 16);
}

#[test]
fn frontier_schedules_replay_to_their_signature() {
    // Re-running a frontier schedule reproduces the exact run the search
    // saw: same signature against a fresh baseline replay.
    let cfg = smoke_cfg();
    let rep = explore(&cfg);
    let baseline = replay(&FaultPlan::new(), cfg.dur, cfg.seed);
    let baseline_trace = baseline.trace.clone().unwrap();
    for (plan, sig) in rep.frontier.iter().take(4) {
        let m = replay(plan, cfg.dur, cfg.seed);
        assert_eq!(
            silo_explorer::Signature::of(&m, &baseline_trace),
            *sig,
            "replay changed the signature of {plan:?}"
        );
    }
}
