//! The fixed simulation cell every schedule is evaluated on.
//!
//! This is the *same* two-rack cell the fault suite (`ext_faults`) sweeps
//! its hand-written scenarios over — the suite imports these constructors,
//! so a schedule the explorer records replays bit-identically in the
//! suite and vice versa. One guaranteed cross-rack OLDI tenant (with an
//! explicit delay bound, so guarantee misses are recorded) and one
//! intra-rack bulk bystander.

use silo_base::{Bytes, Dur, Rate, Time};
use silo_simnet::{
    AuditConfig, FaultPlan, Metrics, PlanBounds, Sim, SimConfig, TenantSpec, TenantWorkload,
    TraceConfig, TransportMode,
};
use silo_topology::{HostId, Topology, TreeParams};

/// Two racks of four servers under one ToR pair, 10 Gbps access links.
pub fn cell_topo() -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 2,
        servers_per_rack: 4,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

/// Tenant 0: guaranteed OLDI spanning both racks (hosts 0 and 4), with an
/// explicit delay bound so violations are checked and recorded.
/// Tenant 1: intra-rack bulk on rack 1 — a bystander for every scenario.
pub fn cell_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            vm_hosts: vec![HostId(0), HostId(4)],
            b: Rate::from_mbps(500),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(1),
            prio: 0,
            delay: Some(Dur::from_ms(2)),
            workload: TenantWorkload::OldiPeriodic {
                msg: Bytes::from_kb(15),
                period: Dur::from_ms(2),
            },
        },
        TenantSpec {
            vm_hosts: vec![HostId(5), HostId(6)],
            b: Rate::from_gbps(3),
            s: Bytes(1500),
            bmax: Rate::from_gbps(10),
            prio: 0,
            delay: None,
            workload: TenantWorkload::BulkAllToAll {
                msg: Bytes::from_kb(256),
            },
        },
    ]
}

/// [`PlanBounds`] of this cell for a run of `dur`: what the explorer
/// sanitizes and mutates schedules against.
pub fn cell_bounds(topo: &Topology, dur: Dur) -> PlanBounds {
    PlanBounds::of(topo, cell_tenants().len(), Time(dur.0))
}

/// The fault suite's six hand-written schedules, which double as the
/// explorer's initial frontier: each already produces a distinct coverage
/// signature, so mutation starts from six different corners of the space
/// instead of cold.
pub fn seed_plans(topo: &Topology, dur_ms: u64) -> Vec<(&'static str, FaultPlan)> {
    let (q1, q2) = (Time::from_ms(dur_ms / 4), Time::from_ms(dur_ms / 2));
    let tor0 = topo.tor_link(0).0;
    vec![
        ("baseline (no faults)", FaultPlan::new()),
        (
            "ToR uplink outage, restored",
            FaultPlan::new().link_down(q1, Some(q2), tor0),
        ),
        (
            "host 0 link dies, permanent",
            FaultPlan::new().link_down(Time::from_ms(dur_ms / 3), None, 0),
        ),
        (
            // OLDI all-to-one aggregates at VM 0; the data sender is the
            // VM on host 4 — stall *its* hypervisor pacer.
            "pacer stall at the sender",
            FaultPlan::new().pacer_stall(q1, q2, 4),
        ),
        (
            "pacer clock 8x slow",
            FaultPlan::new().pacer_drift(q1, q2, 4, 8.0),
        ),
        (
            "tenant 0 churn (down, back)",
            FaultPlan::new().tenant_churn(0, q1, q2),
        ),
    ]
}

/// Run one schedule on the cell. With `observe`, the invariant-audit
/// layer and the flight recorder are both on — the explorer always
/// observes; replay for byte-comparison against physics fingerprints may
/// not (neither layer perturbs `canonical_json`, but the knob keeps the
/// configurations identical when it matters).
pub fn run_plan(topo: &Topology, plan: &FaultPlan, dur: Dur, seed: u64, observe: bool) -> Metrics {
    let mut cfg = SimConfig::new(TransportMode::Silo, dur, seed);
    cfg.faults = plan.clone();
    if observe {
        cfg.audit = Some(AuditConfig::default());
        cfg.trace = Some(TraceConfig::default());
    }
    Sim::new(topo.clone(), cfg, cell_tenants()).run()
}
