//! Coverage-guided fault-schedule search.
//!
//! The fault suite (`ext_faults`) checks six hand-written schedules. This
//! crate searches the space those six were sampled from: link kill/restore
//! timings, pacer stalls and clock drift, tenant churn interleavings —
//! looking for a schedule under which the engine breaks one of its
//! *attribution* guarantees:
//!
//! * an audit violation no injected fault explains,
//! * a pacer frame released before its stamp,
//! * a token-bucket conservation failure, or
//! * a guarantee miss that is neither covered by a fault window nor a
//!   bounded post-restoration aftershock.
//!
//! The search is AFL-style: a frontier of *interesting* schedules is
//! mutated ([`silo_simnet::FaultPlan::mutate`]), each mutant is simulated on a fixed
//! two-rack cell, and a mutant joins the frontier when its **coverage
//! signature** — log2-bucketed audit counters, event-profile shape, and
//! the first point where its flight-recorder trace diverges from the
//! no-fault baseline — has not been seen before. Counterexamples are
//! minimized with `silo_base::prop::shrink_failure` (fewest faults,
//! shortest windows, earliest strike) and serialized as replayable
//! `silo-faultplan-v1` JSON.
//!
//! Everything is deterministic: a pinned seed and a fixed budget produce
//! the same frontier, the same corpus and a byte-identical report.

pub mod cell;
pub mod explore;
pub mod signature;

pub use cell::{cell_bounds, cell_tenants, cell_topo, run_plan, seed_plans};
pub use explore::{
    explore, failure, minimize, replay, Counterexample, ExploreConfig, ExploreReport,
};
pub use signature::Signature;
