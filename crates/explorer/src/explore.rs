//! The frontier loop: mutate, simulate, keep what's novel, minimize what
//! breaks.

use crate::cell::{cell_bounds, cell_topo, run_plan, seed_plans};
use crate::signature::Signature;
use rand::rngs::StdRng;
use rand::SeedableRng;
use silo_base::prop::{shrink_failure, Shrunk};
use silo_base::{env, prop, Dur, FxHashSet, Time};
use silo_simnet::{FaultPlan, Metrics};
use silo_topology::Topology;

/// How long after a fault window closes a guarantee miss still counts as
/// a legitimate post-restoration *aftershock* (residual queue drain).
/// Misses outside every window even with this slack are counterexamples.
pub const RECOVERY_SLACK: Dur = Dur(10_000_000_000); // 10 ms

/// Knobs for one search. Defaults come from the same environment
/// variables as the property harness (`SILO_PROP_SEED`,
/// `SILO_PROP_CASES`), so one knob replays both.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Schedules to evaluate, seeds included (minimization runs extra
    /// sims, reported separately).
    pub budget: usize,
    /// Seeds the mutation RNG and every simulation.
    pub seed: u64,
    /// Horizon of each simulated run.
    pub dur: Dur,
    /// Cap on accepted shrink steps per counterexample.
    pub max_shrink_steps: usize,
}

impl ExploreConfig {
    pub fn from_env() -> ExploreConfig {
        ExploreConfig {
            budget: env::parse_or(prop::CASES_VAR, 256),
            seed: env::parse_or(prop::SEED_VAR, 0x5110_F417),
            dur: Dur::from_ms(60),
            max_shrink_steps: 200,
        }
    }
}

/// A schedule that broke an attribution guarantee, minimized.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The schedule as first found.
    pub original: FaultPlan,
    /// The minimized schedule (still failing; no shrink of it fails).
    pub plan: FaultPlan,
    /// What the minimized schedule breaks.
    pub why: String,
    /// Accepted shrink steps from `original` to `plan`.
    pub shrink_steps: usize,
    /// Evaluation index (0-based) at which `original` was found.
    pub found_at: usize,
}

/// Everything one search produced. [`ExploreReport::render`] is
/// byte-deterministic for a pinned config.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    pub evaluated: usize,
    /// Extra simulations spent minimizing counterexamples.
    pub shrink_runs: usize,
    /// Interesting schedules in discovery order, each with the signature
    /// that earned its slot.
    pub frontier: Vec<(FaultPlan, Signature)>,
    pub counterexamples: Vec<Counterexample>,
}

impl ExploreReport {
    /// Deterministic text report: same config, same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== silo-explorer report ==\n");
        out.push_str(&format!(
            "schedules evaluated: {} (+{} during minimization)\n",
            self.evaluated, self.shrink_runs
        ));
        out.push_str(&format!(
            "frontier: {} distinct signatures\n",
            self.frontier.len()
        ));
        for (i, (plan, sig)) in self.frontier.iter().enumerate() {
            out.push_str(&format!(
                "  [{i:03}] {} fault(s), divergence {:?}, audit {:?}, guarantee {:?}\n",
                plan.events.len(),
                sig.divergence,
                sig.audit,
                sig.guarantee,
            ));
        }
        out.push_str(&format!(
            "counterexamples: {}\n",
            self.counterexamples.len()
        ));
        for (i, cx) in self.counterexamples.iter().enumerate() {
            out.push_str(&format!(
                "  [{i}] found at eval {}: {} ({} -> {} events after {} shrink steps)\n",
                cx.found_at,
                cx.why,
                cx.original.events.len(),
                cx.plan.events.len(),
                cx.shrink_steps,
            ));
            out.push_str(&cx.plan.to_json());
        }
        out
    }
}

/// The counterexample predicate: does this run break an attribution
/// guarantee? Returns what broke, or `None` for a well-explained run.
///
/// Ordered strongest-first so minimization converges on the same class
/// of failure it started from whenever possible.
pub fn failure(m: &Metrics) -> Option<String> {
    if let Some(a) = &m.audit {
        if a.unattributed > 0 {
            return Some(format!(
                "{} audit violation(s) no injected fault explains",
                a.unattributed
            ));
        }
        if a.early_releases > 0 {
            return Some(format!(
                "{} frame(s) released before their pacer stamp",
                a.early_releases
            ));
        }
    }
    if m.token_violations > 0 {
        return Some(format!(
            "{} token-bucket conservation violation(s)",
            m.token_violations
        ));
    }
    for v in m.violations.iter().filter(|v| v.fault.is_none()) {
        // Unattributed guarantee miss: fine iff it is an aftershock —
        // the message started while some realized window (stretched by
        // RECOVERY_SLACK) was still draining.
        let explained = m.fault_windows.iter().any(|w| {
            v.created.0 <= w.end.0.saturating_add(RECOVERY_SLACK.0) && v.completed >= w.start
        });
        if !explained {
            return Some(format!(
                "guarantee miss on tenant {} (created {} ps) with no fault active or draining",
                v.tenant, v.created.0
            ));
        }
    }
    None
}

/// Minimize a failing schedule: fewest faults, then shortest windows,
/// then earliest strike ([`FaultPlan::shrink_candidates`] order), re-running
/// the cell to confirm each candidate still fails. Returns the shrunk
/// plan and the number of simulations spent.
pub fn minimize(
    topo: &Topology,
    plan: &FaultPlan,
    first_why: String,
    cfg: &ExploreConfig,
) -> (Shrunk<FaultPlan>, usize) {
    let bounds = cell_bounds(topo, cfg.dur);
    let mut runs = 0usize;
    let shrunk = shrink_failure(
        plan.clone(),
        first_why,
        |p| p.shrink_candidates(),
        |cand| {
            runs += 1;
            failure(&run_plan(
                topo,
                &cand.sanitize(&bounds),
                cfg.dur,
                cfg.seed,
                true,
            ))
        },
        cfg.max_shrink_steps,
    );
    (shrunk, runs)
}

/// Re-run one recorded schedule exactly as the explorer evaluated it:
/// same cell, observers on. The result's `canonical_json` and trace are
/// byte-identical to the original evaluation for the same `dur`/`seed`.
pub fn replay(plan: &FaultPlan, dur: Dur, seed: u64) -> Metrics {
    run_plan(&cell_topo(), plan, dur, seed, true)
}

/// Run one coverage-guided search. Deterministic: the frontier, the
/// counterexamples and [`ExploreReport::render`] depend only on `cfg`.
pub fn explore(cfg: &ExploreConfig) -> ExploreReport {
    let topo = cell_topo();
    let bounds = cell_bounds(&topo, cfg.dur);
    let dur_ms = cfg.dur.0 / Time::from_ms(1).0;

    // The no-fault baseline anchors trace divergence. It is also
    // evaluation #0: a baseline that *itself* fails is the strongest
    // counterexample there is (empty plan, nothing to shrink).
    let mut report = ExploreReport::default();
    let mut seen: FxHashSet<Signature> = FxHashSet::default();
    let baseline = run_plan(&topo, &FaultPlan::new(), cfg.dur, cfg.seed, true);
    let baseline_trace = baseline.trace.clone().expect("observers on");
    report.evaluated = 1;
    let sig = Signature::of(&baseline, &baseline_trace);
    seen.insert(sig);
    report.frontier.push((FaultPlan::new(), sig));
    if let Some(why) = failure(&baseline) {
        report.counterexamples.push(Counterexample {
            original: FaultPlan::new(),
            plan: FaultPlan::new(),
            why,
            shrink_steps: 0,
            found_at: 0,
        });
    }

    // Seed the frontier with the fault suite's hand-written schedules,
    // then mutate round-robin over whatever is interesting so far.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_F417_0000_0001);
    let mut pending: Vec<FaultPlan> = seed_plans(&topo, dur_ms)
        .into_iter()
        .skip(1) // the baseline is already in
        .map(|(_, p)| p.sanitize(&bounds))
        .collect();
    let mut next_parent = 0usize;
    while report.evaluated < cfg.budget {
        let plan = match pending.pop() {
            Some(p) => p,
            None => {
                let parent = &report.frontier[next_parent % report.frontier.len()].0;
                next_parent += 1;
                parent.mutate(&mut rng, &bounds)
            }
        };
        let m = run_plan(&topo, &plan, cfg.dur, cfg.seed, true);
        let found_at = report.evaluated;
        report.evaluated += 1;
        let sig = Signature::of(&m, &baseline_trace);
        if seen.insert(sig) {
            report.frontier.push((plan.clone(), sig));
        }
        if let Some(why) = failure(&m) {
            let (shrunk, runs) = minimize(&topo, &plan, why, cfg);
            report.shrink_runs += runs;
            report.counterexamples.push(Counterexample {
                original: plan,
                plan: shrunk.input,
                why: shrunk.why,
                shrink_steps: shrunk.steps,
                found_at,
            });
        }
    }
    report
}
