//! Coverage signatures: what makes a fault schedule *interesting*.
//!
//! A signature compresses one simulated run into a small hashable vector
//! of behavior buckets. Two schedules with equal signatures exercised the
//! engine the same way (same invariant classes tripped at the same order
//! of magnitude, same event-profile shape, trace diverging from the
//! no-fault baseline at the same kind of event in the same region), so
//! only the first of them earns a frontier slot. Log2 bucketing is the
//! whole trick: exact counters would make every schedule "novel" and the
//! frontier would degenerate into the full history.

use silo_simnet::{EvKind, Metrics, TraceLog};

/// Log2 bucket of a counter: `0` for zero, else `1 + floor(log2 n)`.
fn bucket(n: u64) -> u8 {
    if n == 0 {
        0
    } else {
        1 + n.ilog2() as u8
    }
}

/// One run's coverage signature. `Hash + Eq`, so novelty is a set probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Bucketed audit violation counters
    /// ([`silo_simnet::AuditReport::counters`]); all zeros when the run
    /// was not audited.
    pub audit: [u8; 8],
    /// Bucketed per-kind fired-event counts
    /// ([`silo_simnet::EventProfile::fired_buckets`]).
    pub fired: [u8; EvKind::COUNT],
    /// Bucketed guarantee-level counters: attributed violations,
    /// unattributed violations, token-bucket violations.
    pub guarantee: [u8; 3],
    /// First divergence from the no-fault baseline trace:
    /// `(kind + 1, bucket(index))` of the first differing trace event, or
    /// `(0, 0)` when the traces are identical. The kind comes from the
    /// faulted run where it has an event at the divergence point, else
    /// from the baseline (the faulted trace ended early).
    pub divergence: (u8, u8),
}

impl Signature {
    /// Extract the signature of `m` against the no-fault `baseline` trace.
    /// `m` must carry a trace (the explorer always runs with observers on).
    pub fn of(m: &Metrics, baseline: &TraceLog) -> Signature {
        let mut audit = [0u8; 8];
        if let Some(a) = &m.audit {
            for (b, &n) in audit.iter_mut().zip(a.counters().iter()) {
                *b = bucket(n);
            }
        }
        let attributed = m.violations.iter().filter(|v| v.fault.is_some()).count() as u64;
        let unattributed = m.violations.len() as u64 - attributed;
        let trace = m.trace.as_ref().expect("explorer runs with tracing on");
        Signature {
            audit,
            fired: m.profile.fired_buckets(),
            guarantee: [
                bucket(attributed),
                bucket(unattributed),
                bucket(m.token_violations),
            ],
            divergence: first_divergence(&trace.events, &baseline.events),
        }
    }
}

/// `(kind + 1, bucket(index))` of the first trace event differing between
/// the two runs, `(0, 0)` when none does.
fn first_divergence(
    run: &[silo_simnet::TraceEvent],
    baseline: &[silo_simnet::TraceEvent],
) -> (u8, u8) {
    let common = run.len().min(baseline.len());
    let idx = (0..common)
        .find(|&i| run[i] != baseline[i])
        .unwrap_or(common);
    if idx == run.len() && idx == baseline.len() {
        return (0, 0);
    }
    let kind = run
        .get(idx)
        .or_else(|| baseline.get(idx))
        .map(|e| e.kind as usize as u8 + 1)
        .unwrap_or(0);
    (kind, bucket(idx as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_log2_with_zero_floor() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(1023), 10);
        assert_eq!(bucket(1024), 11);
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        assert_eq!(first_divergence(&[], &[]), (0, 0));
    }
}
