//! Facebook ETC memcached workload (Atikoglu et al., SIGMETRICS 2012).
//!
//! The paper's testbed tenant A "runs the ETC trace of Facebook workloads
//! using memcached. We generate value sizes and inter arrival times using
//! generalized pareto distribution with parameters from the trace" (§6.1).
//! The published ETC parameters are:
//!
//! * key size (bytes): GPD(μ = 30.7984, σ = 8.20449, ξ = 0.078688)
//! * value size (bytes): GPD(μ = 0, σ = 214.476, ξ = 0.348238)
//! * inter-arrival gap (µs): GPD(μ = 0, σ = 16.0292, ξ = 0.154971)
//!
//! The value distribution's mean is ≈ 329 B, matching the paper's
//! "average value size in our workload is 300 B"; values are clamped to
//! the paper's observed 1 KB maximum by default. Request/response sizes
//! add the memcached + TCP/IP framing overhead so that the average wire
//! packet is ≈ 400 B, as the paper measures.

use rand::Rng;
use silo_base::{Bytes, Dur, GenPareto};

/// Protocol overhead per request/response on the wire (memcached framing +
/// TCP/IP/Ethernet headers).
const WIRE_OVERHEAD: u64 = 70;

/// One GET transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtcRequest {
    /// Gap since the previous request from this client.
    pub gap: Dur,
    /// Request message size on the wire (key + framing).
    pub request: Bytes,
    /// Response message size on the wire (value + framing).
    pub response: Bytes,
}

/// Generator of ETC-like memcached transactions.
#[derive(Debug, Clone)]
pub struct EtcWorkload {
    key: GenPareto,
    value: GenPareto,
    /// Inter-arrival gap in microseconds.
    gap_us: GenPareto,
    /// Clamp for value sizes (the paper's workload tops out at 1 KB).
    pub max_value: Bytes,
    /// Scales the arrival rate: gaps are divided by this factor.
    pub load_factor: f64,
}

impl Default for EtcWorkload {
    fn default() -> EtcWorkload {
        EtcWorkload {
            key: GenPareto::new(30.7984, 8.20449, 0.078688),
            value: GenPareto::new(0.0, 214.476, 0.348238),
            gap_us: GenPareto::new(0.0, 16.0292, 0.154971),
            max_value: Bytes(1024),
            load_factor: 1.0,
        }
    }
}

impl EtcWorkload {
    pub fn new() -> EtcWorkload {
        EtcWorkload::default()
    }

    /// A generator whose arrival rate is scaled by `f` (> 1 = heavier).
    pub fn with_load(f: f64) -> EtcWorkload {
        assert!(f > 0.0);
        EtcWorkload {
            load_factor: f,
            ..EtcWorkload::default()
        }
    }

    /// Draw the next transaction.
    pub fn next_request<R: Rng + ?Sized>(&self, rng: &mut R) -> EtcRequest {
        let key = self.key.sample(rng).round().max(1.0) as u64;
        let value = (self.value.sample(rng).round().max(1.0) as u64).min(self.max_value.as_u64());
        let gap_us = self.gap_us.sample(rng) / self.load_factor;
        EtcRequest {
            gap: Dur::from_secs_f64(gap_us * 1e-6),
            request: Bytes(key + WIRE_OVERHEAD),
            response: Bytes(value + WIRE_OVERHEAD),
        }
    }

    /// Mean requests per second per client at the configured load factor.
    pub fn mean_rate(&self) -> f64 {
        let mean_gap_us = self.gap_us.mean() / self.load_factor;
        1e6 / mean_gap_us
    }

    /// Mean offered bandwidth per client (request + response bytes/sec).
    pub fn mean_bandwidth_bps(&self) -> f64 {
        // Clamping the value tail shifts the mean slightly below the
        // analytic GPD mean; this estimate is for sizing guarantees only.
        let mean_msg = (self.key.mean() + WIRE_OVERHEAD as f64)
            + (self.value.mean().min(self.max_value.as_f64()) + WIRE_OVERHEAD as f64);
        mean_msg * 8.0 * self.mean_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::seeded_rng;

    #[test]
    fn value_sizes_match_paper_average() {
        // Paper: "the average value size in our workload is 300 B".
        let w = EtcWorkload::new();
        let mut rng = seeded_rng(1);
        let n = 100_000;
        let sum: u64 = (0..n)
            .map(|_| w.next_request(&mut rng).response.as_u64() - WIRE_OVERHEAD)
            .sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (250.0..330.0).contains(&mean),
            "mean value size {mean} (clamped tail pulls below 329)"
        );
    }

    #[test]
    fn values_capped_at_1kb() {
        let w = EtcWorkload::new();
        let mut rng = seeded_rng(2);
        for _ in 0..50_000 {
            let r = w.next_request(&mut rng);
            assert!(r.response.as_u64() <= 1024 + WIRE_OVERHEAD);
            assert!(r.request.as_u64() > WIRE_OVERHEAD);
        }
    }

    #[test]
    fn average_packet_size_near_400b() {
        // Paper §6.1: "the average packet size is around 400 B" — the
        // mean of request and response wire sizes.
        let w = EtcWorkload::new();
        let mut rng = seeded_rng(3);
        let n = 100_000;
        let mut total = 0u64;
        for _ in 0..n {
            let r = w.next_request(&mut rng);
            total += r.request.as_u64() + r.response.as_u64();
        }
        let mean_pkt = total as f64 / (2 * n) as f64;
        assert!((200.0..450.0).contains(&mean_pkt), "mean packet {mean_pkt}");
    }

    #[test]
    fn load_factor_scales_rate() {
        let w1 = EtcWorkload::new();
        let w2 = EtcWorkload::with_load(2.0);
        assert!((w2.mean_rate() / w1.mean_rate() - 2.0).abs() < 1e-9);
        let mut rng = seeded_rng(4);
        let n = 50_000;
        let g1: f64 = (0..n)
            .map(|_| w1.next_request(&mut rng).gap.as_us_f64())
            .sum::<f64>()
            / n as f64;
        let g2: f64 = (0..n)
            .map(|_| w2.next_request(&mut rng).gap.as_us_f64())
            .sum::<f64>()
            / n as f64;
        assert!((g1 / g2 - 2.0).abs() < 0.1, "{g1} vs {g2}");
    }

    #[test]
    fn mean_bandwidth_is_tens_of_mbps() {
        // One ETC client ≈ 52.7 kreq/s × ~800 B round trip ≈ 300 Mbps of
        // combined request+response traffic... sanity-check the order of
        // magnitude only (the paper's tenant-wide average is 210 Mbps
        // across 14 clients talking to one server at lower per-client
        // load).
        let w = EtcWorkload::new();
        let bw = w.mean_bandwidth_bps();
        assert!(bw > 1e7 && bw < 1e9, "{bw}");
    }
}
