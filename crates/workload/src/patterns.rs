//! Tenant communication patterns (paper §6.2–6.3).

use rand::seq::SliceRandom;
use rand::Rng;

/// All-to-one: every VM except `target` sends to `target` — the OLDI
/// partition/aggregate pattern class-A tenants use.
pub fn all_to_one(n: usize, target: usize) -> Vec<(usize, usize)> {
    assert!(target < n);
    (0..n)
        .filter(|&s| s != target)
        .map(|s| (s, target))
        .collect()
}

/// All-to-all: every ordered pair — the shuffle pattern of data-parallel
/// jobs (class B in §6.2).
pub fn all_to_all(n: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::with_capacity(n * (n - 1));
    for s in 0..n {
        for d in 0..n {
            if s != d {
                v.push((s, d));
            }
        }
    }
    v
}

/// Permutation-x (§6.3): each VM opens flows to `x` distinct other VMs
/// chosen uniformly at random. Fractional `x` gives each VM `floor(x)`
/// flows plus one more with probability `frac(x)` (so Permutation-0.5
/// has half the VMs sending).
pub fn permutation_x<R: Rng + ?Sized>(n: usize, x: f64, rng: &mut R) -> Vec<(usize, usize)> {
    assert!(x >= 0.0);
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    let base = x.floor() as usize;
    let frac = x - x.floor();
    for s in 0..n {
        let k = base + usize::from(rng.random::<f64>() < frac);
        let k = k.min(n - 1);
        if k == 0 {
            continue;
        }
        let mut others: Vec<usize> = (0..n).filter(|&d| d != s).collect();
        others.shuffle(rng);
        for &d in others.iter().take(k) {
            out.push((s, d));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::seeded_rng;

    #[test]
    fn all_to_one_shape() {
        let p = all_to_one(5, 2);
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|&(s, d)| d == 2 && s != 2));
    }

    #[test]
    fn all_to_all_shape() {
        let p = all_to_all(4);
        assert_eq!(p.len(), 12);
        let mut uniq = p.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 12);
    }

    #[test]
    fn permutation_integer_x() {
        let mut rng = seeded_rng(6);
        let p = permutation_x(10, 2.0, &mut rng);
        assert_eq!(p.len(), 20);
        // No self-flows, no duplicate (s, d) per sender.
        for s in 0..10 {
            let dsts: Vec<usize> = p
                .iter()
                .filter(|&&(a, _)| a == s)
                .map(|&(_, d)| d)
                .collect();
            assert_eq!(dsts.len(), 2);
            assert!(dsts[0] != dsts[1] && !dsts.contains(&s));
        }
    }

    #[test]
    fn permutation_n_is_all_to_all() {
        let mut rng = seeded_rng(7);
        let n = 6;
        let mut p = permutation_x(n, (n - 1) as f64, &mut rng);
        p.sort_unstable();
        assert_eq!(p, all_to_all(n));
    }

    #[test]
    fn permutation_fractional_x() {
        let mut rng = seeded_rng(8);
        let n = 2000;
        let p = permutation_x(n, 0.5, &mut rng);
        let frac = p.len() as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "{frac}");
    }

    #[test]
    fn permutation_x_caps_at_n_minus_1() {
        let mut rng = seeded_rng(9);
        let p = permutation_x(4, 100.0, &mut rng);
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn tiny_tenants() {
        let mut rng = seeded_rng(10);
        assert!(permutation_x(1, 1.0, &mut rng).is_empty());
        assert_eq!(all_to_one(2, 0), vec![(1, 0)]);
    }
}
