//! Tenant-churn streams for the long-running admission service.
//!
//! Generates the event mix a cluster manager actually sees: tenants
//! arriving under a diurnal (sinusoidally modulated) Poisson process,
//! departing after exponential lifetimes, with optional flash crowds
//! (short arrival-rate spikes) and correlated failure bursts (several
//! host links in one rack failing together, then healing). The output is
//! a time-sorted `Vec<(f64, ChurnEvent)>` ready to feed
//! `silo_placement::AdmissionService` one event at a time.
//!
//! Everything is a pure function of the config (seed included), so two
//! calls with the same config produce byte-identical streams — the
//! differential and CI gates depend on that.

use rand::Rng;
use silo_base::{exponential, seeded_rng};
use silo_placement::{ChurnEvent, Guarantee, TenantRequest};
use silo_topology::Topology;

/// A transient arrival-rate spike: between `at_s` and `at_s + dur_s` the
/// instantaneous arrival rate is multiplied by `multiplier`.
#[derive(Debug, Clone, Copy)]
pub struct FlashCrowd {
    pub at_s: f64,
    pub dur_s: f64,
    pub multiplier: f64,
}

/// A correlated failure: `hosts` host links inside one rack fail at
/// `at_s` and are all restored at `at_s + dur_s`.
#[derive(Debug, Clone, Copy)]
pub struct FailureBurst {
    pub at_s: f64,
    pub dur_s: f64,
    pub hosts: usize,
}

/// Parameters of a churn stream.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    pub seed: u64,
    /// Stream horizon in (virtual) seconds; no event is emitted past it.
    pub horizon_s: f64,
    /// Base arrival rate λ, tenants/second, before diurnal modulation.
    pub arrivals_per_s: f64,
    /// Relative amplitude of the sinusoidal diurnal cycle, in [0, 1):
    /// λ(t) = λ·(1 + A·sin(2πt/T)).
    pub diurnal_amplitude: f64,
    /// Period T of the diurnal cycle, seconds.
    pub diurnal_period_s: f64,
    /// Mean tenant lifetime (exponential), seconds.
    pub mean_lifetime_s: f64,
    /// Mean VMs per tenant (exponential, rounded up, clamped to
    /// `max_vms`).
    pub mean_vms: f64,
    pub max_vms: usize,
    /// Fraction of tenants requesting the delay-bounded class-A
    /// guarantee; the rest ask for bandwidth-only class B.
    pub class_a_frac: f64,
    /// Fraction of multi-VM tenants that additionally demand spreading
    /// across ≥2 fault domains.
    pub spread_frac: f64,
    pub flash_crowds: Vec<FlashCrowd>,
    pub failure_bursts: Vec<FailureBurst>,
}

impl ChurnConfig {
    /// A plain diurnal arrive/depart workload: one-hour virtual day,
    /// ±60% swing, tenants living ~90 s, a few VMs each.
    pub fn diurnal(seed: u64) -> ChurnConfig {
        ChurnConfig {
            seed,
            horizon_s: 3600.0,
            arrivals_per_s: 30.0,
            diurnal_amplitude: 0.6,
            diurnal_period_s: 3600.0,
            mean_lifetime_s: 90.0,
            mean_vms: 3.0,
            max_vms: 16,
            class_a_frac: 0.75,
            spread_frac: 0.25,
            flash_crowds: Vec::new(),
            failure_bursts: Vec::new(),
        }
    }

    /// Scale the horizon so the expected number of tenant lifetimes
    /// (arrivals) is `n`. The sinusoid integrates to zero over whole
    /// periods, so E\[arrivals\] ≈ λ·horizon.
    pub fn for_lifetimes(mut self, n: u64) -> ChurnConfig {
        self.horizon_s = n as f64 / self.arrivals_per_s;
        self
    }

    pub fn with_flash_crowd(mut self, f: FlashCrowd) -> ChurnConfig {
        assert!(f.multiplier >= 1.0, "flash crowds only raise the rate");
        self.flash_crowds.push(f);
        self
    }

    pub fn with_failure_burst(mut self, f: FailureBurst) -> ChurnConfig {
        assert!(f.hosts >= 1);
        self.failure_bursts.push(f);
        self
    }

    /// Instantaneous arrival rate at time `t`.
    fn rate_at(&self, t: f64) -> f64 {
        let diurnal = 1.0
            + self.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * t / self.diurnal_period_s).sin();
        let mut r = self.arrivals_per_s * diurnal.max(0.0);
        for f in &self.flash_crowds {
            if t >= f.at_s && t < f.at_s + f.dur_s {
                r *= f.multiplier;
            }
        }
        r
    }

    /// Upper bound on `rate_at` over the whole horizon (for thinning).
    fn rate_max(&self) -> f64 {
        let mut boost = 1.0_f64;
        for f in &self.flash_crowds {
            boost = boost.max(f.multiplier);
        }
        self.arrivals_per_s * (1.0 + self.diurnal_amplitude) * boost
    }
}

/// Generate the full event stream for `cfg` on `topo`, sorted by time
/// (ties broken by generation order). `Evict(i)` always refers to the
/// i-th `Admit` of this same stream and always follows it.
pub fn generate(topo: &Topology, cfg: &ChurnConfig) -> Vec<(f64, ChurnEvent)> {
    let mut rng = seeded_rng(cfg.seed);
    let mut events: Vec<(f64, ChurnEvent)> = Vec::new();

    // Tenant arrivals via thinning of a homogeneous λmax process.
    let lambda_max = cfg.rate_max();
    assert!(lambda_max > 0.0, "arrival rate must be positive");
    let mut t = 0.0_f64;
    let mut admits = 0u32;
    loop {
        t += exponential(&mut rng, lambda_max);
        if t >= cfg.horizon_s {
            break;
        }
        if rng.random::<f64>() * lambda_max > cfg.rate_at(t) {
            continue; // thinned out
        }
        let vms = (exponential(&mut rng, 1.0 / cfg.mean_vms).ceil() as usize).clamp(1, cfg.max_vms);
        let guarantee = if rng.random_bool(cfg.class_a_frac) {
            Guarantee::class_a()
        } else {
            Guarantee::class_b()
        };
        let mut req = TenantRequest::new(vms, guarantee);
        if vms >= 2 && rng.random_bool(cfg.spread_frac) {
            req = req.with_fault_domains(2 + rng.random_range(0..vms - 1));
        }
        events.push((t, ChurnEvent::Admit(req)));
        let depart = t + exponential(&mut rng, 1.0 / cfg.mean_lifetime_s);
        if depart < cfg.horizon_s {
            events.push((depart, ChurnEvent::Evict(admits)));
        }
        admits += 1;
    }

    // Correlated failures: each burst fails `hosts` host links of one
    // (seed-chosen) rack together and restores them together. A separate
    // RNG keeps the arrival stream independent of the burst list.
    let mut frng = seeded_rng(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xfa17);
    for f in &cfg.failure_bursts {
        let rack = frng.random_range(0..topo.num_racks());
        let in_rack: Vec<_> = topo.hosts_in_rack(rack).collect();
        let n = f.hosts.min(in_rack.len());
        for &h in in_rack.iter().take(n) {
            let link = topo.host_link(h);
            events.push((f.at_s, ChurnEvent::FailLink(link)));
            let heal = f.at_s + f.dur_s;
            if heal < cfg.horizon_s {
                events.push((heal, ChurnEvent::RestoreLink(link)));
            }
        }
    }

    // Stable by generation order, then sort by time only: equal-time
    // events keep their emission order, and an Evict can never precede
    // its Admit (departure gaps are strictly positive).
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::{Bytes, Dur, Rate};
    use silo_topology::TreeParams;

    fn topo() -> Topology {
        Topology::build(TreeParams {
            pods: 2,
            racks_per_pod: 2,
            servers_per_rack: 4,
            vm_slots_per_server: 4,
            host_link: Rate::from_gbps(10),
            tor_oversub: 1.0,
            agg_oversub: 2.0,
            switch_buffer: Bytes::from_kb(360),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        })
    }

    #[test]
    fn streams_are_deterministic() {
        let topo = topo();
        let cfg = ChurnConfig::diurnal(42)
            .for_lifetimes(500)
            .with_flash_crowd(FlashCrowd {
                at_s: 5.0,
                dur_s: 2.0,
                multiplier: 4.0,
            })
            .with_failure_burst(FailureBurst {
                at_s: 8.0,
                dur_s: 3.0,
                hosts: 2,
            });
        let a = generate(&topo, &cfg);
        let b = generate(&topo, &cfg);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(x.0 == y.0 && x.1 == y.1);
        }
        // A different seed must differ somewhere.
        let mut c2 = cfg.clone();
        c2.seed = 43;
        let c = generate(&topo, &c2);
        assert!(
            a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x.0 != y.0),
            "different seeds should give different streams"
        );
    }

    #[test]
    fn streams_are_well_formed() {
        let topo = topo();
        let cfg = ChurnConfig::diurnal(7)
            .for_lifetimes(1000)
            .with_failure_burst(FailureBurst {
                at_s: 1.0,
                dur_s: 5.0,
                hosts: 3,
            });
        let evs = generate(&topo, &cfg);
        let mut admits_seen = 0u32;
        let mut last_t = 0.0_f64;
        for (t, ev) in &evs {
            assert!(*t >= last_t, "events must be time-sorted");
            assert!(*t < cfg.horizon_s);
            last_t = *t;
            match ev {
                ChurnEvent::Admit(req) => {
                    assert!(req.vms >= 1 && req.vms <= cfg.max_vms);
                    assert!(req.min_fault_domains >= 1 && req.min_fault_domains <= req.vms);
                    admits_seen += 1;
                }
                ChurnEvent::Evict(i) => {
                    assert!(*i < admits_seen, "evict must follow its admit");
                }
                ChurnEvent::FailLink(l) | ChurnEvent::RestoreLink(l) => {
                    assert!((l.0 as usize) < topo.num_links());
                }
            }
        }
        // Expected arrivals ≈ λ·horizon; allow generous slack.
        let expect = cfg.arrivals_per_s * cfg.horizon_s;
        assert!(
            (admits_seen as f64) > 0.5 * expect && (admits_seen as f64) < 1.5 * expect,
            "{admits_seen} admits vs expected {expect}"
        );
    }

    #[test]
    fn flash_crowd_raises_local_rate() {
        let topo = topo();
        let base = ChurnConfig::diurnal(9).for_lifetimes(2000);
        let flash = base.clone().with_flash_crowd(FlashCrowd {
            at_s: 10.0,
            dur_s: 10.0,
            multiplier: 5.0,
        });
        let count = |evs: &[(f64, ChurnEvent)]| {
            evs.iter()
                .filter(|(t, e)| (10.0..20.0).contains(t) && matches!(e, ChurnEvent::Admit(_)))
                .count()
        };
        let a = count(&generate(&topo, &base));
        let b = count(&generate(&topo, &flash));
        assert!(b > 2 * a, "flash window should see a spike: {a} vs {b}");
    }
}
