//! Poisson message arrivals (Table 1's burst-allowance experiment).

use rand::Rng;
use silo_base::{exponential, Bytes, Dur};

/// Fixed-size messages with exponential inter-arrival gaps, sized so the
/// *average* offered load equals a target bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct PoissonMessages {
    /// Message size `M`.
    pub size: Bytes,
    /// Mean arrival rate, messages/second.
    pub rate: f64,
}

impl PoissonMessages {
    pub fn new(size: Bytes, rate: f64) -> PoissonMessages {
        assert!(rate > 0.0);
        PoissonMessages { size, rate }
    }

    /// Messages of `size` arriving so that the mean offered bandwidth is
    /// `avg_bps` (Table 1's setup: "messages ... have Poisson arrivals and
    /// an average bandwidth requirement of B").
    pub fn with_average_bandwidth(size: Bytes, avg_bps: f64) -> PoissonMessages {
        assert!(avg_bps > 0.0);
        let rate = avg_bps / (size.bits() as f64);
        PoissonMessages::new(size, rate)
    }

    /// Draw the gap to the next message.
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Dur {
        Dur::from_secs_f64(exponential(rng, self.rate))
    }

    /// Mean offered bandwidth in bits/sec.
    pub fn offered_bps(&self) -> f64 {
        self.rate * self.size.bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::seeded_rng;

    #[test]
    fn average_bandwidth_roundtrip() {
        let p = PoissonMessages::with_average_bandwidth(Bytes::from_kb(10), 1e8);
        assert!((p.offered_bps() - 1e8).abs() < 1.0);
        // 10 KB = 80 kbit; 100 Mbps / 80 kbit = 1250 msg/s.
        assert!((p.rate - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_rate_matches() {
        let p = PoissonMessages::new(Bytes(1500), 10_000.0);
        let mut rng = seeded_rng(5);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_secs_f64()).sum();
        let rate = n as f64 / total;
        assert!((rate - 10_000.0).abs() / 10_000.0 < 0.02, "{rate}");
    }
}
