//! Workload generators for Silo's experiments.
//!
//! * [`EtcWorkload`] — the memcached workload of §6.1: Facebook's ETC
//!   cache pool as characterized by Atikoglu et al. (SIGMETRICS 2012),
//!   with generalized-Pareto value sizes and inter-arrival times (exactly
//!   how the paper synthesizes it).
//! * [`PoissonMessages`] — fixed-size messages with Poisson arrivals
//!   (Table 1's burst-allowance study).
//! * [`patterns`] — the communication patterns of §6.2–6.3: all-to-one
//!   (OLDI partition/aggregate), all-to-all (shuffle), and Permutation-x.
//!
//! All generators draw from a caller-provided RNG so experiments stay
//! reproducible end to end.

pub mod churn;
pub mod etc;
pub mod patterns;
pub mod poisson;

pub use churn::{ChurnConfig, FailureBurst, FlashCrowd};
pub use etc::{EtcRequest, EtcWorkload};
pub use patterns::{all_to_all, all_to_one, permutation_x};
pub use poisson::PoissonMessages;
