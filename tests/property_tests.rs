//! Randomized property tests on the core data structures and invariants:
//! network-calculus curves, token buckets, the paced batcher, placement
//! bookkeeping, and the hose allocator.
//!
//! Each property runs 128 independently seeded cases (the seed is part of
//! the failure message), driven by the workspace's deterministic RNG
//! instead of an external property-testing framework.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silo::base::{Bytes, Dur, Rate, Time};
use silo::netcalc::{backlog_bound, queue_delay_bound, Curve, Line, ServiceCurve};
use silo::pacer::{BucketChain, HoseAllocator, PacedBatcher, TokenBucket};
use silo::placement::{Guarantee, Placer, SiloPlacer, TenantRequest};
use silo::topology::{Topology, TreeParams};

const CASES: u64 = 128;

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(property * 1_000_003 + case)
}

fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.random::<f64>()
}

fn arb_lines(rng: &mut StdRng) -> Vec<Line> {
    let n = rng.random_range(1..6usize);
    (0..n)
        .map(|_| Line {
            rate: uniform(rng, 1.0e6, 1.0e10),
            burst: uniform(rng, 0.0, 1.0e6),
        })
        .collect()
}

/// Normalization never changes the curve's pointwise value.
#[test]
fn curve_envelope_equals_brute_force_min() {
    for case in 0..CASES {
        let rng = &mut case_rng(1, case);
        let lines = arb_lines(rng);
        let curve = Curve::from_lines(lines.clone());
        for _ in 0..8 {
            let t = uniform(rng, 0.0, 1.0);
            let brute = lines
                .iter()
                .map(|l| l.eval(t))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (curve.eval(t) - brute).abs() <= 1e-6 * brute.max(1.0),
                "case {case} t={t}: {} vs {}",
                curve.eval(t),
                brute
            );
        }
    }
}

/// Addition is pointwise: (A+B)(t) = A(t) + B(t).
#[test]
fn curve_addition_is_pointwise() {
    for case in 0..CASES {
        let rng = &mut case_rng(2, case);
        let ca = Curve::from_lines(arb_lines(rng));
        let cb = Curve::from_lines(arb_lines(rng));
        let sum = ca.add(&cb);
        for _ in 0..8 {
            let t = uniform(rng, 0.0, 0.1);
            let expect = ca.eval(t) + cb.eval(t);
            assert!(
                (sum.eval(t) - expect).abs() <= 1e-6 * expect.max(1.0),
                "case {case} t={t}"
            );
        }
    }
}

/// Queue-delay and backlog bounds are consistent for a constant-rate
/// server: backlog = rate x delay.
#[test]
fn deviation_bounds_are_consistent() {
    for case in 0..CASES {
        let rng = &mut case_rng(3, case);
        let a = Curve::from_lines(arb_lines(rng));
        let svc = ServiceCurve::constant_rate(Rate::from_gbps(rng.random_range(1..40u64)));
        match (queue_delay_bound(&a, &svc), backlog_bound(&a, &svc)) {
            (Some(q), Some(b)) => {
                let expect = b / svc.rate;
                assert!(
                    (q - expect).abs() <= 1e-9 + 1e-6 * expect,
                    "case {case}: q={q} b/r={expect}"
                );
            }
            (None, None) => {}
            (q, b) => panic!("case {case}: bounds disagree on finiteness: {q:?} {b:?}"),
        }
    }
}

/// A token bucket never releases more than its curve allows: over any
/// window of emitted stamps, bytes <= rate x window + capacity.
#[test]
fn token_bucket_output_conforms() {
    for case in 0..CASES {
        let rng = &mut case_rng(4, case);
        let rate = Rate::from_mbps(rng.random_range(50..5_000u64));
        let cap = Bytes::from_kb(rng.random_range(2..64u64));
        let sizes: Vec<u64> = (0..rng.random_range(10..80usize))
            .map(|_| rng.random_range(100..1500u64))
            .collect();
        let mut tb = TokenBucket::new(rate, cap);
        let mut stamps: Vec<(Time, u64)> = Vec::new();
        let mut now = Time::ZERO;
        for &s in &sizes {
            let t = tb.earliest(now, Bytes(s));
            tb.commit(t, Bytes(s));
            stamps.push((t, s));
            now = t;
        }
        for i in 0..stamps.len() {
            let mut bytes = 0u64;
            for j in i..stamps.len() {
                bytes += stamps[j].1;
                let window = (stamps[j].0 - stamps[i].0).as_secs_f64();
                let allowed = rate.bytes_per_sec() * window + cap.as_f64() + 1.0;
                assert!(
                    bytes as f64 <= allowed,
                    "case {case} window [{i},{j}]: {bytes} > {allowed}"
                );
            }
        }
    }
}

/// Chains preserve monotone stamps regardless of bucket parameters.
#[test]
fn bucket_chain_stamps_are_monotone() {
    for case in 0..CASES {
        let rng = &mut case_rng(5, case);
        let mut chain = BucketChain::new(vec![
            TokenBucket::new(
                Rate::from_mbps(rng.random_range(100..10_000u64)),
                Bytes(rng.random_range(1500..100_000u64)),
            ),
            TokenBucket::new(
                Rate::from_mbps(rng.random_range(100..10_000u64)),
                Bytes(rng.random_range(1500..100_000u64)),
            ),
        ]);
        let mut prev = Time::ZERO;
        for _ in 0..rng.random_range(5..60usize) {
            let t = chain.stamp(prev, Bytes(1500));
            assert!(t >= prev, "case {case}");
            prev = t;
        }
    }
}

/// The paced batcher never reorders or drops data packets, never emits
/// one before its stamp, and keeps frames non-overlapping.
#[test]
fn batcher_schedule_is_sound() {
    for case in 0..CASES {
        let rng = &mut case_rng(6, case);
        let gaps_us: Vec<u64> = (0..rng.random_range(2..40usize))
            .map(|_| rng.random_range(0..40u64))
            .collect();
        let link = Rate::from_gbps(10);
        let mut b: PacedBatcher<usize> = PacedBatcher::new(link, Dur::from_us(50), Bytes(1500));
        let mut stamp = Time::ZERO;
        let mut stamps = Vec::new();
        for (i, g) in gaps_us.iter().enumerate() {
            stamp += Dur::from_us(*g);
            b.enqueue(stamp, Bytes(1500), i);
            stamps.push(stamp);
        }
        let mut now = Time::ZERO;
        let mut seen = Vec::new();
        let mut wire_end = Time::ZERO;
        for _ in 0..10_000 {
            let batch = b.next_batch(now);
            if batch.is_empty() {
                match b.next_stamp() {
                    Some(s) => {
                        now = s.max(now);
                        continue;
                    }
                    None => break,
                }
            }
            for f in &batch.frames {
                assert!(f.start >= wire_end, "case {case}: overlapping frames");
                wire_end = f.start + link.tx_time(f.size);
                if let Some(id) = f.payload {
                    assert!(f.start >= stamps[id], "case {case}: packet {id} left early");
                    seen.push(id);
                }
            }
            now = batch.done_at;
        }
        // All packets delivered, in order.
        assert_eq!(seen.len(), gaps_us.len(), "case {case}");
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "case {case}");
    }
}

/// Hose allocation never violates either endpoint's hose.
#[test]
fn hose_allocation_respects_hoses() {
    for case in 0..CASES {
        let rng = &mut case_rng(7, case);
        let pairs: Vec<(u32, u32)> = (0..rng.random_range(1..20usize))
            .map(|_| (rng.random_range(0..6u32), rng.random_range(0..6u32)))
            .filter(|(s, d)| s != d)
            .collect();
        if pairs.is_empty() {
            continue;
        }
        let mut uniq = pairs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let b = Rate::from_gbps(1);
        let rates = HoseAllocator::new(b).allocate(&uniq);
        let mut tx = std::collections::HashMap::new();
        let mut rx = std::collections::HashMap::new();
        for (&(s, d), r) in &rates {
            *tx.entry(s).or_insert(0u64) += r.as_bps();
            *rx.entry(d).or_insert(0u64) += r.as_bps();
        }
        for (_, &sum) in tx.iter().chain(rx.iter()) {
            assert!(
                sum as f64 <= b.as_bps() as f64 * 1.01,
                "case {case}: hose violated: {sum}"
            );
        }
    }
}

/// Placement bookkeeping: admit/remove round trips leave the placer able
/// to admit exactly the same set again (no capacity leaks).
#[test]
fn placement_admit_remove_no_leak() {
    for case in 0..CASES {
        let rng = &mut case_rng(8, case);
        let sizes: Vec<usize> = (0..rng.random_range(1..8usize))
            .map(|_| rng.random_range(2..12usize))
            .collect();
        let topo = Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 2,
            servers_per_rack: 4,
            vm_slots_per_server: 4,
            ..TreeParams::ns2_paper()
        });
        let mut placer = SiloPlacer::new(topo);
        let reqs: Vec<TenantRequest> = sizes
            .iter()
            .map(|&n| TenantRequest::new(n, Guarantee::class_a()))
            .collect();
        let first: Vec<_> = reqs
            .iter()
            .map(|r| placer.try_place(r).map(|p| p.tenant))
            .collect();
        // Remove everything that was admitted.
        for t in first.iter().flatten() {
            assert!(placer.remove(*t), "case {case}");
        }
        assert_eq!(placer.used_slots(), 0, "case {case}");
        // The same sequence must be admitted identically.
        let second: Vec<_> = reqs
            .iter()
            .map(|r| placer.try_place(r).map(|p| p.tenant))
            .collect();
        assert_eq!(
            first.iter().map(Result::is_ok).collect::<Vec<_>>(),
            second.iter().map(Result::is_ok).collect::<Vec<_>>(),
            "case {case}"
        );
    }
}
