//! Property-based tests (proptest) on the core data structures and
//! invariants: network-calculus curves, token buckets, the paced batcher,
//! placement bookkeeping, and the hose allocator.

use proptest::prelude::*;
use silo::base::{Bytes, Dur, Rate, Time};
use silo::netcalc::{backlog_bound, queue_delay_bound, Curve, Line, ServiceCurve};
use silo::pacer::{BucketChain, HoseAllocator, PacedBatcher, TokenBucket};
use silo::placement::{Guarantee, Placer, SiloPlacer, TenantRequest};
use silo::topology::{Topology, TreeParams};

fn arb_lines() -> impl Strategy<Value = Vec<Line>> {
    prop::collection::vec(
        (1.0e6..1.0e10f64, 0.0..1.0e6f64).prop_map(|(rate, burst)| Line { rate, burst }),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normalization never changes the curve's pointwise value.
    #[test]
    fn curve_envelope_equals_brute_force_min(lines in arb_lines(), ts in prop::collection::vec(0.0..1.0f64, 8)) {
        let curve = Curve::from_lines(lines.clone());
        for t in ts {
            let brute = lines.iter().map(|l| l.eval(t)).fold(f64::INFINITY, f64::min);
            prop_assert!((curve.eval(t) - brute).abs() <= 1e-6 * brute.max(1.0),
                "t={t}: {} vs {}", curve.eval(t), brute);
        }
    }

    /// Addition is pointwise: (A+B)(t) = A(t) + B(t).
    #[test]
    fn curve_addition_is_pointwise(a in arb_lines(), b in arb_lines(), ts in prop::collection::vec(0.0..0.1f64, 8)) {
        let ca = Curve::from_lines(a);
        let cb = Curve::from_lines(b);
        let sum = ca.add(&cb);
        for t in ts {
            let expect = ca.eval(t) + cb.eval(t);
            prop_assert!((sum.eval(t) - expect).abs() <= 1e-6 * expect.max(1.0));
        }
    }

    /// Queue-delay and backlog bounds are consistent for a constant-rate
    /// server: backlog = rate x delay.
    #[test]
    fn deviation_bounds_are_consistent(lines in arb_lines(), svc_gbps in 1u64..40) {
        let a = Curve::from_lines(lines);
        let svc = ServiceCurve::constant_rate(Rate::from_gbps(svc_gbps));
        match (queue_delay_bound(&a, &svc), backlog_bound(&a, &svc)) {
            (Some(q), Some(b)) => {
                let expect = b / svc.rate;
                prop_assert!((q - expect).abs() <= 1e-9 + 1e-6 * expect, "q={q} b/r={expect}");
            }
            (None, None) => {}
            (q, b) => prop_assert!(false, "bounds disagree on finiteness: {q:?} {b:?}"),
        }
    }

    /// A token bucket never releases more than its curve allows: over any
    /// window of emitted stamps, bytes <= rate x window + capacity.
    #[test]
    fn token_bucket_output_conforms(
        rate_mbps in 50u64..5_000,
        cap_kb in 2u64..64,
        sizes in prop::collection::vec(100u64..1500, 10..80),
    ) {
        let rate = Rate::from_mbps(rate_mbps);
        let cap = Bytes::from_kb(cap_kb);
        let mut tb = TokenBucket::new(rate, cap);
        let mut stamps: Vec<(Time, u64)> = Vec::new();
        let mut now = Time::ZERO;
        for &s in &sizes {
            let t = tb.earliest(now, Bytes(s));
            tb.commit(t, Bytes(s));
            stamps.push((t, s));
            now = t;
        }
        for i in 0..stamps.len() {
            let mut bytes = 0u64;
            for j in i..stamps.len() {
                bytes += stamps[j].1;
                let window = (stamps[j].0 - stamps[i].0).as_secs_f64();
                let allowed = rate.bytes_per_sec() * window + cap.as_f64() + 1.0;
                prop_assert!(bytes as f64 <= allowed,
                    "window [{i},{j}]: {bytes} > {allowed}");
            }
        }
    }

    /// Chains preserve monotone stamps regardless of bucket parameters.
    #[test]
    fn bucket_chain_stamps_are_monotone(
        r1 in 100u64..10_000, r2 in 100u64..10_000,
        c1 in 1500u64..100_000, c2 in 1500u64..100_000,
        n in 5usize..60,
    ) {
        let mut chain = BucketChain::new(vec![
            TokenBucket::new(Rate::from_mbps(r1), Bytes(c1)),
            TokenBucket::new(Rate::from_mbps(r2), Bytes(c2)),
        ]);
        let mut prev = Time::ZERO;
        for _ in 0..n {
            let t = chain.stamp(prev, Bytes(1500));
            prop_assert!(t >= prev);
            prev = t;
        }
    }

    /// The paced batcher never reorders or drops data packets, never
    /// emits one before its stamp, and keeps frames non-overlapping.
    #[test]
    fn batcher_schedule_is_sound(gaps_us in prop::collection::vec(0u64..40, 2..40)) {
        let link = Rate::from_gbps(10);
        let mut b: PacedBatcher<usize> = PacedBatcher::new(link, Dur::from_us(50), Bytes(1500));
        let mut stamp = Time::ZERO;
        let mut stamps = Vec::new();
        for (i, g) in gaps_us.iter().enumerate() {
            stamp = stamp + Dur::from_us(*g);
            b.enqueue(stamp, Bytes(1500), i);
            stamps.push(stamp);
        }
        let mut now = Time::ZERO;
        let mut seen = Vec::new();
        let mut wire_end = Time::ZERO;
        for _ in 0..10_000 {
            let batch = b.next_batch(now);
            if batch.is_empty() {
                match b.next_stamp() {
                    Some(s) => { now = s.max(now); continue; }
                    None => break,
                }
            }
            for f in &batch.frames {
                prop_assert!(f.start >= wire_end, "overlapping frames");
                wire_end = f.start + link.tx_time(f.size);
                if let Some(id) = f.payload {
                    prop_assert!(f.start >= stamps[id], "packet {id} left early");
                    seen.push(id);
                }
            }
            now = batch.done_at;
        }
        // All packets delivered, in order.
        prop_assert_eq!(seen.len(), gaps_us.len());
        prop_assert!(seen.windows(2).all(|w| w[0] < w[1]));
    }

    /// Hose allocation never violates either endpoint's hose.
    #[test]
    fn hose_allocation_respects_hoses(pairs in prop::collection::vec((0u32..6, 0u32..6), 1..20)) {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().filter(|(s, d)| s != d).collect();
        prop_assume!(!pairs.is_empty());
        let mut uniq = pairs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let b = Rate::from_gbps(1);
        let rates = HoseAllocator::new(b).allocate(&uniq);
        let mut tx = std::collections::HashMap::new();
        let mut rx = std::collections::HashMap::new();
        for (&(s, d), r) in &rates {
            *tx.entry(s).or_insert(0u64) += r.as_bps();
            *rx.entry(d).or_insert(0u64) += r.as_bps();
        }
        for (_, &sum) in tx.iter().chain(rx.iter()) {
            prop_assert!(sum as f64 <= b.as_bps() as f64 * 1.01, "hose violated: {sum}");
        }
    }

    /// Placement bookkeeping: admit/remove round trips leave the placer
    /// able to admit exactly the same set again (no capacity leaks).
    #[test]
    fn placement_admit_remove_no_leak(sizes in prop::collection::vec(2usize..12, 1..8), seed in 0u64..1000) {
        let _ = seed;
        let topo = Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 2,
            servers_per_rack: 4,
            vm_slots_per_server: 4,
            ..TreeParams::ns2_paper()
        });
        let mut placer = SiloPlacer::new(topo);
        let reqs: Vec<TenantRequest> = sizes
            .iter()
            .map(|&n| TenantRequest::new(n, Guarantee::class_a()))
            .collect();
        let first: Vec<_> = reqs.iter().map(|r| placer.try_place(r).map(|p| p.tenant)).collect();
        // Remove everything that was admitted.
        for t in first.iter().flatten() {
            prop_assert!(placer.remove(*t));
        }
        prop_assert_eq!(placer.used_slots(), 0);
        // The same sequence must be admitted identically.
        let second: Vec<_> = reqs.iter().map(|r| placer.try_place(r).map(|p| p.tenant)).collect();
        prop_assert_eq!(first.iter().map(Result::is_ok).collect::<Vec<_>>(),
                        second.iter().map(Result::is_ok).collect::<Vec<_>>());
    }
}
