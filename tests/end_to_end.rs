//! Cross-crate integration tests: the full Silo pipeline from admission
//! through placement, pacing, and packet-level simulation.

use silo::base::{Bytes, Dur, Rate};
use silo::core::{Guarantee, SiloController, TenantRequest};
use silo::placement::{Placer, RejectReason, SiloPlacer};
use silo::simnet::{Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo::topology::{HostId, Level, Topology, TreeParams};

/// Admission decisions must be honored by the data plane: place a tenant
/// with Silo, run its worst-case workload (simultaneous all-to-one
/// bursts), and verify zero drops and the latency bound.
#[test]
fn admitted_tenant_meets_its_guarantee_end_to_end() {
    let topo = Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: 8,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    });
    let guarantee = Guarantee {
        b: Rate::from_mbps(250),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        delay: Some(Dur::from_ms(1)),
    };
    let mut controller = SiloController::new(topo.clone());
    let tenant = controller
        .admit(&TenantRequest::new(20, guarantee))
        .expect("8x4 slots with light guarantees must fit");
    // The controller's bound for the burst-sized message.
    let msg = Bytes((guarantee.s.as_u64() * 9) / 10);
    let bound = controller.message_latency_bound(tenant.id, msg).unwrap();

    // Drive the placement in the packet simulator.
    let mut vm_hosts: Vec<HostId> = Vec::new();
    for &(h, k) in &tenant.placement.hosts {
        for _ in 0..k {
            vm_hosts.push(h);
        }
    }
    // Worst-case *conformant* workload: all 19 workers burst `msg` bytes
    // to VM 0 simultaneously, strictly periodically. Eq. 1's bound only
    // covers traffic inside the `{B, S}` hose arrival curve, so the
    // period must satisfy both conformance conditions:
    //   - receiver hose: 19 x 13.5 KB / period ≤ B = 250 Mbps ⇒ period ≥ 8.2 ms
    //   - per-pair burst refill: period ≥ msg / B = 432 us
    // 16 ms runs the receiver hose at ~50% load. (A Poisson driver at
    // mean 8 ms — the seed's setup — offers 256.5 Mbps > B and also
    // violates the per-pair curve whenever two events land within the
    // refill time, so its tail is legitimately outside eq. 1's promise.)
    let spec = TenantSpec {
        vm_hosts,
        b: guarantee.b,
        s: guarantee.s,
        bmax: guarantee.bmax,
        prio: 0,
        delay: None,
        workload: TenantWorkload::OldiPeriodic {
            msg,
            period: Dur::from_ms(16),
        },
    };
    let cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(200), 11);
    let m = Sim::new(topo, cfg, vec![spec]).run();
    assert_eq!(m.drops, 0, "conformant bursts must never overflow");
    let mut lat = m.latencies_us(0);
    assert!(lat.len() > 100, "bursts completed: {}", lat.len());
    let p999 = lat.p999().unwrap();
    assert!(
        p999 <= bound.as_us_f64() * 1.1,
        "p999 {p999} us must respect the bound {bound} (+10% measurement slack)"
    );
}

/// The three placers agree on slot arithmetic but diverge exactly where
/// the paper says they do.
#[test]
fn placer_divergence_matches_paper_story() {
    use silo::placement::{LocalityPlacer, OktopusPlacer};
    let topo = Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: 3,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(300),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    });
    // The Fig. 5 tenant: bandwidth-feasible, burst-infeasible when packed.
    let req = TenantRequest::new(
        9,
        Guarantee {
            b: Rate::from_gbps(1),
            s: Bytes::from_kb(100),
            bmax: Rate::from_gbps(10),
            delay: Some(Dur::from_ms(1)),
        },
    );
    let mut locality = LocalityPlacer::new(topo.clone());
    let mut okto = OktopusPlacer::new(topo.clone());
    let mut silo = SiloPlacer::new(topo);
    // Locality and Oktopus accept with dense packing.
    assert!(locality.try_place(&req).is_ok());
    assert!(okto.try_place(&req).is_ok());
    // Silo refuses: even balanced 3/3/3 needs ~354 KB of buffering.
    assert_eq!(
        silo.try_place(&req),
        Err(RejectReason::NetworkUnsatisfiable)
    );
}

/// Delay guarantees constrain placement height across a real multi-pod
/// topology, and the spans reported are consistent with actual placements.
#[test]
fn delay_guarantee_shapes_placement_span() {
    let topo = Topology::build(TreeParams::ns2_paper());
    let mut placer = SiloPlacer::new(topo);
    // 1 ms: fits a pod (budget ~800 us), not cross-pod (~1.3 ms). Thirty
    // VMs keep the worst-case all-to-one burst (29 x 15 KB draining at
    // Bmax) inside a 312 KB port; much larger class-A tenants are
    // correctly rejected by C1.
    let placed = placer
        .try_place(&TenantRequest::new(30, Guarantee::class_a()))
        .expect("30 light VMs fit one pod");
    assert!(placed.span <= Level::SamePod, "span {:?}", placed.span);
    // No delay guarantee: a paper-scale class-B tenant is admitted (its
    // hose must still fit the 1:5 oversubscribed uplinks — 2 Gbps x 49
    // VMs does; vastly larger ones are correctly refused).
    let placed_b = placer
        .try_place(&TenantRequest::new(49, Guarantee::class_b()))
        .expect("bandwidth-only tenant");
    assert_eq!(placed_b.total_vms(), 49);
    assert!(
        placer
            .try_place(&TenantRequest::new(330, Guarantee::class_b()))
            .is_err(),
        "330 x 2 Gbps hose cannot cross 80 G uplinks"
    );
}

/// Determinism across the whole stack: identical seeds give identical
/// metrics for a mixed multi-tenant run.
#[test]
fn full_stack_determinism() {
    let run = || {
        let topo = Topology::build(TreeParams::testbed());
        let cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(30), 77);
        let hosts: Vec<HostId> = (0..5u32).flat_map(|h| [HostId(h); 2]).collect();
        let tenants = vec![
            TenantSpec {
                vm_hosts: hosts.clone(),
                b: Rate::from_mbps(500),
                s: Bytes::from_kb(15),
                bmax: Rate::from_gbps(1),
                prio: 0,
                delay: None,
                workload: TenantWorkload::OldiAllToOne {
                    msg_mean: Bytes::from_kb(13),
                    interval: Dur::from_ms(2),
                },
            },
            TenantSpec {
                vm_hosts: hosts,
                b: Rate::from_gbps(2),
                s: Bytes(1500),
                bmax: Rate::from_gbps(2),
                prio: 0,
                delay: None,
                workload: TenantWorkload::BulkAllToAll {
                    msg: Bytes::from_mb(1),
                },
            },
        ];
        Sim::new(topo, cfg, tenants).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.messages.len(), b.messages.len());
    assert_eq!(a.goodput, b.goodput);
    assert_eq!(a.wire_void_bytes, b.wire_void_bytes);
}
